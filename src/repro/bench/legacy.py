"""Frozen copies of the v1.0 tuple-set join kernels.

The engine's joins are columnar now (:mod:`repro.relation`); these are
the exact pre-columnar implementations, kept verbatim so the relation
micro-benchmarks (``benchmarks/bench_relation_ops.py``) and the join
ablation (``benchmarks/bench_join_strategies.py``) can keep measuring
the speedup against a stable baseline.  Never import these from engine
code.
"""

from __future__ import annotations

Pair = tuple[int, int]


def tuple_merge_join(left: list[Pair], right: list[Pair]) -> list[Pair]:
    """The seed merge join: two-pointer group join into a tuple set."""
    result: set[Pair] = set()
    i = j = 0
    left_len, right_len = len(left), len(right)
    while i < left_len and j < right_len:
        key_left = left[i][1]
        key_right = right[j][0]
        if key_left < key_right:
            i += 1
        elif key_left > key_right:
            j += 1
        else:
            i_end = i
            while i_end < left_len and left[i_end][1] == key_left:
                i_end += 1
            j_end = j
            while j_end < right_len and right[j_end][0] == key_right:
                j_end += 1
            for source, _ in left[i:i_end]:
                for _, target in right[j:j_end]:
                    result.add((source, target))
            i, j = i_end, j_end
    return list(result)


def tuple_hash_join(left: list[Pair], right: list[Pair]) -> list[Pair]:
    """The seed hash join: dict build on the smaller tuple list."""
    result: set[Pair] = set()
    if len(left) <= len(right):
        by_target: dict[int, list[int]] = {}
        for source, target in left:
            by_target.setdefault(target, []).append(source)
        for mid, target in right:
            sources = by_target.get(mid)
            if sources:
                for source in sources:
                    result.add((source, target))
    else:
        by_source: dict[int, list[int]] = {}
        for source, target in right:
            by_source.setdefault(source, []).append(target)
        for source, mid in left:
            targets = by_source.get(mid)
            if targets:
                for target in targets:
                    result.add((source, target))
    return list(result)


def tuple_union(parts: list[list[Pair]]) -> list[Pair]:
    """The seed union: accumulate tuple sets."""
    result: set[Pair] = set()
    for part in parts:
        result.update(part)
    return list(result)


def tuple_dedup_sort(pairs: list[Pair]) -> list[Pair]:
    """The seed sort+dedup: set then sorted()."""
    return sorted(set(pairs))


# -- seed recursion (tuple-set delta iteration) --------------------------------
#
# Frozen copies of the v1.0 closure kernels (the shape still used by the
# reference oracle in repro/rpq/semantics.py), parameterized on a node
# id iterable instead of a Graph so the closure benchmark can run them
# against raw pair lists.


def _tuple_compose(left: set[Pair], right: set[Pair]) -> set[Pair]:
    if not left or not right:
        return set()
    by_source: dict[int, list[int]] = {}
    for mid, target in right:
        by_source.setdefault(mid, []).append(target)
    result: set[Pair] = set()
    for source, mid in left:
        targets = by_source.get(mid)
        if targets:
            for target in targets:
                result.add((source, target))
    return result


def tuple_relation_power(node_ids, base: set[Pair], exponent: int) -> set[Pair]:
    """The seed ``base^exponent`` (power 0 is the identity)."""
    if exponent == 0:
        return {(node, node) for node in node_ids}
    result = set(base)
    for _ in range(exponent - 1):
        result = _tuple_compose(result, base)
        if not result:
            break
    return result


def tuple_transitive_fixpoint(node_ids, base: set[Pair], low: int) -> set[Pair]:
    """The seed fixpoint: tuple-set delta iteration."""
    if low == 0:
        accumulated = {(node, node) for node in node_ids} | base
        start_power = base
    elif low == 1:
        accumulated = set(base)
        start_power = base
    else:
        start_power = tuple_relation_power(node_ids, base, low)
        accumulated = set(start_power)
    delta = set(start_power)
    while delta:
        delta = _tuple_compose(delta, base) - accumulated
        accumulated |= delta
    return accumulated


def tuple_bounded_powers(
    node_ids, base: set[Pair], low: int, high: int
) -> set[Pair]:
    """The seed ``base^low ∪ ... ∪ base^high`` with early saturation."""
    power = tuple_relation_power(node_ids, base, low)
    accumulated = set(power)
    seen: set[frozenset] = {frozenset(power)}
    for _ in range(low, high):
        if not power:
            break
        power = _tuple_compose(power, base)
        accumulated |= power
        fingerprint = frozenset(power)
        if fingerprint in seen:
            break
        seen.add(fingerprint)
    return accumulated
