"""Experiment drivers: the code behind every figure and table.

Each function reproduces one empirical artifact of the paper (see
DESIGN.md's experiment index) and returns plain data rows, so the same
drivers back the pytest benchmarks, the example scripts and the CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median

from repro.api import GraphDatabase
from repro.baselines import automaton_eval, datalog_eval
from repro.bench.queries import WorkloadQuery, workload
from repro.bench.workloads import PreparedWorkload, advogato_workload
from repro.graph.graph import Graph
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics
from repro.rpq.parser import parse

STRATEGIES: tuple[str, ...] = ("naive", "semi-naive", "minsupport", "minjoin")


@dataclass(frozen=True, slots=True)
class Measurement:
    """One timed query evaluation."""

    query: str
    method: str
    k: int
    seconds: float
    answer_size: int


def _time_query(
    database: GraphDatabase, query: WorkloadQuery, method: str, repeats: int
) -> Measurement:
    timings: list[float] = []
    answer_size = 0
    for _ in range(repeats):
        # Bypass the API's query cache: the point is to measure the
        # rewrite/plan/execute pipeline, not the cache lookup.
        result = database.query(query.text, method=method, use_cache=False)
        timings.append(result.seconds)
        answer_size = len(result.pairs)
    return Measurement(
        query=query.name,
        method=method,
        k=database.k,
        seconds=median(timings),
        answer_size=answer_size,
    )


def run_figure2(
    prepared: PreparedWorkload | None = None,
    ks: tuple[int, ...] = (1, 2, 3),
    methods: tuple[str, ...] = STRATEGIES,
    repeats: int = 3,
    scale: str = "bench",
) -> list[Measurement]:
    """Figure 2: 8 queries x 4 methods x k in {1,2,3}.

    The ``naive`` method has k pinned to 1 by definition (it indexes
    edge labels only); it is still *measured* under each panel, as in
    the paper's figure, using the k=1 index.
    """
    if prepared is None:
        prepared = advogato_workload(scale=scale, ks=ks)
    queries = workload(prepared.labels)
    measurements: list[Measurement] = []
    for k in ks:
        database = prepared.database(k)
        naive_database = prepared.database(1)
        for query in queries:
            for method in methods:
                target = naive_database if method == "naive" else database
                measurement = _time_query(target, query, method, repeats)
                # Record under the panel's k even for naive (fixed k=1).
                measurements.append(
                    Measurement(
                        query=measurement.query,
                        method=measurement.method,
                        k=k,
                        seconds=measurement.seconds,
                        answer_size=measurement.answer_size,
                    )
                )
    return measurements


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """Path-index vs baseline timing for one query."""

    query: str
    index_seconds: float
    baseline_seconds: float
    answer_size: int

    @property
    def speedup(self) -> float:
        if self.index_seconds <= 0.0:
            return float("inf")
        return self.baseline_seconds / self.index_seconds


def run_datalog_comparison(
    prepared: PreparedWorkload | None = None,
    k: int = 3,
    scale: str = "small",
    repeats: int = 1,
) -> list[ComparisonRow]:
    """Section 6: minSupport over I_{G,k} vs semi-naive Datalog."""
    if prepared is None:
        prepared = advogato_workload(scale=scale, ks=(1, k))
    database = prepared.database(k)
    rows: list[ComparisonRow] = []
    for query in workload(prepared.labels):
        index_measure = _time_query(database, query, "minsupport", repeats)
        node = parse(query.text)
        started = time.perf_counter()
        answer = datalog_eval.evaluate(prepared.graph, node)
        datalog_seconds = time.perf_counter() - started
        rows.append(
            ComparisonRow(
                query=query.name,
                index_seconds=index_measure.seconds,
                baseline_seconds=datalog_seconds,
                answer_size=len(answer),
            )
        )
    return rows


def run_automaton_comparison(
    prepared: PreparedWorkload | None = None,
    k: int = 3,
    scale: str = "bench",
    repeats: int = 1,
) -> list[ComparisonRow]:
    """Section 3.1's traversal comparison: minSupport vs product-BFS."""
    if prepared is None:
        prepared = advogato_workload(scale=scale, ks=(1, k))
    database = prepared.database(k)
    rows: list[ComparisonRow] = []
    for query in workload(prepared.labels):
        index_measure = _time_query(database, query, "minsupport", repeats)
        node = parse(query.text)
        started = time.perf_counter()
        answer = automaton_eval.evaluate(prepared.graph, node)
        automaton_seconds = time.perf_counter() - started
        rows.append(
            ComparisonRow(
                query=query.name,
                index_seconds=index_measure.seconds,
                baseline_seconds=automaton_seconds,
                answer_size=len(answer),
            )
        )
    return rows


@dataclass(frozen=True, slots=True)
class IndexBuildRow:
    """Index construction metrics for one (k, backend)."""

    k: int
    backend: str
    build_seconds: float
    entries: int
    paths: int


def run_index_build(
    graph: Graph,
    ks: tuple[int, ...] = (1, 2, 3),
    backends: tuple[str, ...] = ("memory",),
    tmp_dir: str | None = None,
) -> list[IndexBuildRow]:
    """Index size and build time vs k (thesis-scope table)."""
    rows: list[IndexBuildRow] = []
    for backend in backends:
        for k in ks:
            path = None
            if backend == "disk":
                if tmp_dir is None:
                    raise ValueError("disk backend requires tmp_dir")
                path = f"{tmp_dir}/pathindex_k{k}.db"
            started = time.perf_counter()
            index = PathIndex.build(graph, k, backend=backend, path=path)
            build_seconds = time.perf_counter() - started
            rows.append(
                IndexBuildRow(
                    k=k,
                    backend=backend,
                    build_seconds=build_seconds,
                    entries=index.entry_count,
                    paths=index.path_count,
                )
            )
            index.close()
    return rows


@dataclass(frozen=True, slots=True)
class HistogramRow:
    """Estimation quality and plan quality for one bucket count."""

    buckets: int
    mean_absolute_error: float
    minsupport_seconds: float


def run_histogram_ablation(
    prepared: PreparedWorkload | None = None,
    k: int = 2,
    bucket_counts: tuple[int, ...] = (4, 16, 64, 256),
    scale: str = "bench",
    repeats: int = 3,
) -> list[HistogramRow]:
    """How bucket count affects estimates and minSupport run-times."""
    if prepared is None:
        prepared = advogato_workload(scale=scale, ks=(1, k))
    database = prepared.database(k)
    exact = database.index.counts_by_path()
    total = ExactStatistics.from_index(database.index).total_paths_k
    rows: list[HistogramRow] = []
    for buckets in bucket_counts:
        histogram = EquiDepthHistogram.from_counts(
            exact, k=k, total_paths_k=total, buckets=buckets
        )
        error = histogram.mean_absolute_error(exact)
        database._histogram = histogram  # ablation: swap the synopsis
        timings = [
            _time_query(database, query, "minsupport", repeats).seconds
            for query in workload(prepared.labels)
        ]
        rows.append(
            HistogramRow(
                buckets=buckets,
                mean_absolute_error=error,
                minsupport_seconds=sum(timings),
            )
        )
    database.build_index()  # restore the default histogram
    return rows
