"""Terminal plotting: grouped bar charts for the Figure-2 panels.

The paper's Figure 2 is three bar charts; matplotlib is not available
in the offline environment, so this renders the same panels as Unicode
bar charts.  Used by ``examples/figure2_experiment.py`` and the CLI.
"""

from __future__ import annotations

from repro.bench.harness import Measurement
from repro.errors import ValidationError

_BLOCKS = " ▏▎▍▌▋▊▉█"


def horizontal_bar(value: float, maximum: float, width: int = 40) -> str:
    """A fixed-width bar representing ``value / maximum``."""
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    if maximum <= 0:
        return " " * width
    fraction = max(0.0, min(value / maximum, 1.0))
    eighths = round(fraction * width * 8)
    full, remainder = divmod(eighths, 8)
    bar = "█" * full
    if remainder and full < width:
        bar += _BLOCKS[remainder]
    return bar.ljust(width)


def bar_chart(
    rows: list[tuple[str, float]],
    width: int = 40,
    unit: str = "ms",
) -> str:
    """A labeled horizontal bar chart from (label, value) rows."""
    if not rows:
        return "(no data)"
    label_width = max(len(label) for label, _ in rows)
    maximum = max(value for _, value in rows)
    lines = []
    for label, value in rows:
        bar = horizontal_bar(value, maximum, width)
        lines.append(f"{label:<{label_width}} │{bar}│ {value:8.2f} {unit}")
    return "\n".join(lines)


def figure2_panel_chart(
    measurements: list[Measurement], k: int, width: int = 36
) -> str:
    """One Figure-2 panel as a grouped bar chart (queries × methods)."""
    panel = [m for m in measurements if m.k == k]
    if not panel:
        return f"(no measurements for k={k})"
    methods = list(dict.fromkeys(m.method for m in panel))
    queries = list(dict.fromkeys(m.query for m in panel))
    by_key = {(m.query, m.method): m.seconds * 1000.0 for m in panel}
    maximum = max(by_key.values())
    lines = [f"Figure 2, panel k={k} (bar = run-time, ms)"]
    for query in queries:
        lines.append(query)
        for method in methods:
            value = by_key.get((query, method))
            if value is None:
                continue
            bar = horizontal_bar(value, maximum, width)
            lines.append(f"  {method:<11} │{bar}│ {value:8.2f}")
    return "\n".join(lines)


def figure2_charts(measurements: list[Measurement], width: int = 36) -> str:
    """All panels, mirroring the paper's three side-by-side charts."""
    ks = sorted({m.k for m in measurements})
    return "\n\n".join(
        figure2_panel_chart(measurements, k, width) for k in ks
    )
