"""The 8-query Advogato workload (Figure 2 of the paper).

The demo paper runs 8 queries over Advogato but does not print them;
this module reconstructs a workload with the same *coverage*: every
operator of the RPQ grammar (concatenation, inverse, union, bounded
recursion, and combinations) at disjunct lengths from 2 to 6 steps —
the range in which the choice of k (1..3) and of evaluation strategy
visibly matters.

Queries are templates over a 3-label vocabulary, instantiated for
whatever label set a concrete graph uses (Advogato's certification
levels by default).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.graph.generators import ADVOGATO_LABELS


@dataclass(frozen=True, slots=True)
class WorkloadQuery:
    """One named query of the benchmark workload."""

    name: str
    text: str
    description: str


#: Templates over placeholders {a} {b} {c} (three labels).
_TEMPLATES: tuple[tuple[str, str, str], ...] = (
    ("Q1", "{a}/{b}", "short concatenation (2 steps)"),
    ("Q2", "{b}/{b}/{c}", "concatenation with a repeated label (3 steps)"),
    ("Q3", "{a}/^{b}", "concatenation with an inverse step"),
    ("Q4", "{b}{{1,3}}", "bounded recursion of a single label"),
    ("Q5", "({a}|{c})/{b}", "union under concatenation"),
    ("Q6", "{a}/{b}/{c}/{b}", "long concatenation (4 steps)"),
    ("Q7", "^{c}/{a}{{1,2}}/{b}", "inverse + recursion + concatenation"),
    ("Q8", "({a}/{b}){{2,3}}", "recursion of a composite path (4-6 steps)"),
)


def workload(labels: tuple[str, str, str] = ADVOGATO_LABELS) -> list[WorkloadQuery]:
    """Instantiate Q1-Q8 for a 3-label vocabulary."""
    if len(labels) != 3:
        raise ValidationError(
            f"the benchmark workload needs exactly 3 labels, got {labels!r}"
        )
    a, b, c = labels
    return [
        WorkloadQuery(name, template.format(a=a, b=b, c=c), description)
        for name, template, description in _TEMPLATES
    ]


def query_by_name(name: str, labels: tuple[str, str, str] = ADVOGATO_LABELS) -> WorkloadQuery:
    """Fetch one workload query by its ``Q<n>`` name."""
    for query in workload(labels):
        if query.name == name:
            return query
    raise ValidationError(f"no workload query named {name!r}")
