"""Benchmark workloads, harness, reporting and export for the evaluation."""

from repro.bench.harness import (
    ComparisonRow,
    HistogramRow,
    IndexBuildRow,
    Measurement,
    run_automaton_comparison,
    run_datalog_comparison,
    run_figure2,
    run_histogram_ablation,
    run_index_build,
)
from repro.bench.export import write_csv, write_json
from repro.bench.queries import WorkloadQuery, workload
from repro.bench.workloads import PreparedWorkload, advogato_workload

__all__ = [
    "ComparisonRow",
    "HistogramRow",
    "IndexBuildRow",
    "Measurement",
    "PreparedWorkload",
    "WorkloadQuery",
    "advogato_workload",
    "run_automaton_comparison",
    "run_datalog_comparison",
    "run_figure2",
    "run_histogram_ablation",
    "run_index_build",
    "workload",
    "write_csv",
    "write_json",
]
