"""Rendering experiment rows as the paper's tables and panels."""

from __future__ import annotations

from statistics import geometric_mean

from repro.bench.harness import ComparisonRow, HistogramRow, IndexBuildRow, Measurement


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:9.2f}"


def format_figure2(measurements: list[Measurement]) -> str:
    """The three Figure-2 panels: per-query run-times (ms) by method."""
    ks = sorted({m.k for m in measurements})
    methods = list(dict.fromkeys(m.method for m in measurements))
    queries = list(dict.fromkeys(m.query for m in measurements))
    by_key = {(m.query, m.method, m.k): m for m in measurements}
    lines: list[str] = []
    for k in ks:
        lines.append(f"Figure 2, panel k={k} — query execution times (ms)")
        header = "query  " + "".join(f"{method:>12}" for method in methods)
        lines.append(header)
        lines.append("-" * len(header))
        for query in queries:
            cells = []
            for method in methods:
                measurement = by_key.get((query, method, k))
                cells.append(
                    _format_ms(measurement.seconds).rjust(12)
                    if measurement
                    else " " * 12
                )
            lines.append(f"{query:<7}" + "".join(cells))
        lines.append("")
    return "\n".join(lines)


def format_comparison(rows: list[ComparisonRow], baseline_name: str) -> str:
    """Per-query speedups of the path index over one baseline."""
    lines = [
        f"minSupport (path index) vs {baseline_name} — per-query times",
        f"{'query':<7}{'index (ms)':>12}{baseline_name + ' (ms)':>16}{'speedup':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.query:<7}{_format_ms(row.index_seconds):>12}"
            f"{_format_ms(row.baseline_seconds):>16}{row.speedup:>9.1f}x"
        )
    speedups = [row.speedup for row in rows if row.speedup != float("inf")]
    if speedups:
        lines.append(
            f"{'geomean':<7}{'':>12}{'':>16}{geometric_mean(speedups):>9.1f}x"
        )
    return "\n".join(lines)


def format_index_build(rows: list[IndexBuildRow]) -> str:
    """Index size / build-time table."""
    lines = [
        f"{'k':>3}{'backend':>10}{'build (s)':>12}{'entries':>12}{'paths':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.k:>3}{row.backend:>10}{row.build_seconds:>12.3f}"
            f"{row.entries:>12}{row.paths:>8}"
        )
    return "\n".join(lines)


def format_histogram(rows: list[HistogramRow]) -> str:
    """Histogram ablation table."""
    lines = [
        f"{'buckets':>8}{'mean |err|':>12}{'workload (ms)':>15}",
    ]
    for row in rows:
        lines.append(
            f"{row.buckets:>8}{row.mean_absolute_error:>12.2f}"
            f"{row.minsupport_seconds * 1000.0:>15.2f}"
        )
    return "\n".join(lines)


def figure2_trends(measurements: list[Measurement]) -> dict[str, bool]:
    """The qualitative claims of Section 5 as booleans.

    * ``naive_worst`` — naive is the slowest method per (query, k) in
      aggregate;
    * ``histogram_helps`` — the paper's claim is that semi-naive "is
      generally outperformed by minSupport and minJoin": the better of
      the two histogram-guided strategies must not lose to semi-naive
      in aggregate (2% tolerance for timer noise);
    * ``k_improves`` — for non-naive methods, total time at max k is
      below total time at k=1.
    """
    methods = {m.method for m in measurements}
    totals = {
        method: sum(m.seconds for m in measurements if m.method == method)
        for method in methods
    }
    naive_worst = all(
        totals.get("naive", 0.0) >= total
        for method, total in totals.items()
        if method != "naive"
    )
    guided = min(
        totals.get("minsupport", float("inf")),
        totals.get("minjoin", float("inf")),
    )
    histogram_helps = guided <= totals.get("semi-naive", float("inf")) * 1.02
    ks = sorted({m.k for m in measurements})
    k_improves = True
    if len(ks) > 1:
        low_k, high_k = ks[0], ks[-1]
        for method in methods - {"naive"}:
            low_total = sum(
                m.seconds
                for m in measurements
                if m.method == method and m.k == low_k
            )
            high_total = sum(
                m.seconds
                for m in measurements
                if m.method == method and m.k == high_k
            )
            if high_total > low_total:
                k_improves = False
    return {
        "naive_worst": naive_worst,
        "histogram_helps": histogram_helps,
        "k_improves": k_improves,
    }
