"""A from-scratch Datalog engine and the RPQ translation (approach 2)."""

from repro.datalog.ast import Atom, Const, Program, Rule, Var, atom, rule, var
from repro.datalog.engine import (
    Database,
    EvaluationStats,
    naive_evaluate,
    seminaive_evaluate,
)
from repro.datalog.translate import Translation, graph_to_edb, translate

__all__ = [
    "Atom",
    "Const",
    "Database",
    "EvaluationStats",
    "Program",
    "Rule",
    "Translation",
    "Var",
    "atom",
    "graph_to_edb",
    "naive_evaluate",
    "rule",
    "seminaive_evaluate",
    "translate",
    "var",
]
