"""Translating RPQs to Datalog programs (the approach-2 baseline).

Every AST node becomes a fresh IDB predicate over node-id pairs; the
EDB holds one binary ``edge_<label>`` relation per label plus a unary
``node`` relation.  Recursion maps to genuine Datalog recursion:

* ``R*``   — ``p(X,X) :- node(X).  p(X,Y) :- p(X,Z), base(Z,Y).``
* ``R{i,j}`` — power predicates ``pow_m`` chained by composition with
  the answer a union over ``pow_i .. pow_j`` (and identity when i=0);
* ``R{i,}`` — the closure composed after ``pow_i``.

This mirrors how the literature (e.g. the paper's reference [3]) maps
property paths onto recursive views, and it is what makes the baseline
slow: the fixpoint materializes full intermediate relations with no
selectivity-based ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatalogError
from repro.datalog.ast import Atom, Program, Rule, Var, atom, rule, var
from repro.datalog.engine import Database
from repro.graph.graph import Graph, Step
from repro.rpq.ast import (
    Concat,
    Epsilon,
    Inverse,
    Label,
    Node,
    Repeat,
    Star,
    Union,
)
from repro.rpq.rewrite import push_inverse

NODE_PRED = "node"


def edge_predicate(label: str) -> str:
    """The EDB predicate name for one edge label."""
    return f"edge_{label}"


def graph_to_edb(graph: Graph) -> Database:
    """Export a graph as the extensional database of the translation."""
    facts: dict[str, set[tuple]] = {NODE_PRED: set()}
    for node_id in graph.node_ids():
        facts[NODE_PRED].add((node_id,))
    for label in graph.labels():
        predicate = edge_predicate(label)
        facts[predicate] = set(graph.step_pairs(Step(label)))
    return Database(facts)


@dataclass(frozen=True, slots=True)
class Translation:
    """A Datalog program plus the predicate holding the query answer."""

    program: Program
    answer_predicate: str


class _Translator:
    def __init__(self) -> None:
        self._rules: list[Rule] = []
        self._counter = 0
        self._x = var("X")
        self._y = var("Y")

    def fresh(self, hint: str) -> str:
        name = f"q{self._counter}_{hint}"
        self._counter += 1
        return name

    def add(self, head: Atom, *body: Atom) -> None:
        self._rules.append(rule(head, *body))

    def translate(self, node: Node) -> str:
        """Emit rules for ``node``; return its predicate name."""
        x, y = self._x, self._y
        if isinstance(node, Epsilon):
            predicate = self.fresh("eps")
            self.add(atom(predicate, x, x), atom(NODE_PRED, x))
            return predicate
        if isinstance(node, Label):
            predicate = self.fresh("step")
            edge = edge_predicate(node.step.label)
            if node.step.inverse:
                self.add(atom(predicate, x, y), atom(edge, y, x))
            else:
                self.add(atom(predicate, x, y), atom(edge, x, y))
            return predicate
        if isinstance(node, Concat):
            predicate = self.fresh("cat")
            part_predicates = [self.translate(part) for part in node.parts]
            self._compose_rule(predicate, part_predicates)
            return predicate
        if isinstance(node, Union):
            predicate = self.fresh("alt")
            for part in node.parts:
                part_predicate = self.translate(part)
                self.add(atom(predicate, x, y), atom(part_predicate, x, y))
            return predicate
        if isinstance(node, Star):
            base = self.translate(node.child)
            return self._closure(base)
        if isinstance(node, Repeat):
            return self._repeat(node)
        if isinstance(node, Inverse):
            raise DatalogError("inverse must be pushed to labels before translation")
        raise DatalogError(f"unknown AST node {type(node).__name__}")

    def _compose_rule(self, predicate: str, parts: list[str]) -> None:
        """``predicate(X, Y) :- parts0(X, Z1), parts1(Z1, Z2), ...``."""
        x, y = self._x, self._y
        body: list[Atom] = []
        current: Var = x
        for position, part in enumerate(parts):
            last = position == len(parts) - 1
            nxt = y if last else var(f"Z{self._counter}_{position}")
            body.append(atom(part, current, nxt))
            current = nxt
        self.add(atom(predicate, x, y), *body)

    def _closure(self, base: str) -> str:
        """Reflexive-transitive closure of ``base``."""
        x, y = self._x, self._y
        predicate = self.fresh("star")
        z = var(f"Z{self._counter}_s")
        self.add(atom(predicate, x, x), atom(NODE_PRED, x))
        self.add(atom(predicate, x, y), atom(predicate, x, z), atom(base, z, y))
        return predicate

    def _power(self, base: str, exponent: int) -> str:
        """``base`` composed with itself ``exponent`` times (>= 1)."""
        current = base
        for _ in range(exponent - 1):
            predicate = self.fresh("pow")
            self._compose_rule(predicate, [current, base])
            current = predicate
        return current

    def _repeat(self, node: Repeat) -> str:
        x, y = self._x, self._y
        base = self.translate(node.child)
        predicate = self.fresh("rep")
        if node.high is None:
            closure = self._closure(base)
            if node.low == 0:
                self.add(atom(predicate, x, y), atom(closure, x, y))
            else:
                low_pred = self._power(base, node.low)
                self._compose_rule(predicate, [low_pred, closure])
            return predicate
        if node.low == 0:
            self.add(atom(predicate, x, x), atom(NODE_PRED, x))
        powers: dict[int, str] = {}
        current = base
        powers[1] = current
        for exponent in range(2, node.high + 1):
            next_pred = self.fresh("pow")
            self._compose_rule(next_pred, [current, base])
            powers[exponent] = next_pred
            current = next_pred
        for exponent in range(max(node.low, 1), node.high + 1):
            self.add(atom(predicate, x, y), atom(powers[exponent], x, y))
        return predicate


def translate(node: Node) -> Translation:
    """Translate an RPQ AST (inverse allowed) to a Datalog program."""
    translator = _Translator()
    answer = translator.translate(push_inverse(node))
    return Translation(
        program=Program(tuple(translator._rules)),
        answer_predicate=answer,
    )
