"""Datalog abstract syntax: terms, atoms, rules, programs.

This is the substrate for the paper's approach (2) baseline (Datalog /
recursive-SQL evaluation of RPQs).  Programs here are positive
(negation-free) with constants and variables; that fragment is all the
RPQ translation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DatalogError


@dataclass(frozen=True, slots=True)
class Var:
    """A Datalog variable (upper-case by convention)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant (node ids in the RPQ translation)."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Term = Var | Const


@dataclass(frozen=True, slots=True)
class Atom:
    """``predicate(term, ...)``."""

    predicate: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.predicate:
            raise DatalogError("atom predicate must be non-empty")
        for term in self.terms:
            if not isinstance(term, (Var, Const)):
                raise DatalogError(f"not a term: {term!r}")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Var]:
        for term in self.terms:
            if isinstance(term, Var):
                yield term

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True, slots=True)
class Rule:
    """``head :- body_1, ..., body_n`` (facts have an empty body)."""

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        body_vars = {var for atom in self.body for var in atom.variables()}
        for var in self.head.variables():
            if var not in body_vars:
                raise DatalogError(
                    f"rule is not range-restricted: head variable {var} "
                    f"does not occur in the body: {self}"
                )

    @property
    def is_fact(self) -> bool:
        return not self.body

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."


@dataclass(frozen=True, slots=True)
class Program:
    """A set of rules; IDB predicates are those appearing in heads."""

    rules: tuple[Rule, ...]

    def __post_init__(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                known = arities.setdefault(atom.predicate, atom.arity)
                if known != atom.arity:
                    raise DatalogError(
                        f"predicate {atom.predicate!r} used with arities "
                        f"{known} and {atom.arity}"
                    )

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by rules (the program derives these)."""
        return frozenset(rule.head.predicate for rule in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates only read, never derived (facts come from outside)."""
        idb = self.idb_predicates()
        used = {
            atom.predicate for rule in self.rules for atom in rule.body
        }
        return frozenset(used - idb)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        return tuple(
            rule for rule in self.rules if rule.head.predicate == predicate
        )

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


def var(name: str) -> Var:
    """Shorthand variable constructor."""
    return Var(name)


def atom(predicate: str, *terms: Term) -> Atom:
    """Shorthand atom constructor."""
    return Atom(predicate, tuple(terms))


def rule(head: Atom, *body: Atom) -> Rule:
    """Shorthand rule constructor."""
    return Rule(head, tuple(body))
