"""Bottom-up Datalog evaluation: naive and semi-naive.

The paper's approach (2) translates Kleene recursion into recursive
Datalog programs evaluated bottom-up.  This engine implements both the
naive fixpoint (re-derive everything each round) and the standard
semi-naive optimization (per-round deltas: each rule application
requires at least one body atom to be matched against facts that are
new as of the previous round).

Rule bodies are evaluated left-to-right with binding propagation;
each body atom is matched through a hash index on its bound positions,
built once per (relation version, atom) application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DatalogError
from repro.datalog.ast import Atom, Const, Program, Rule, Var

Fact = tuple
Relation = set[Fact]


@dataclass
class EvaluationStats:
    """Counters describing one bottom-up evaluation."""

    rounds: int = 0
    facts_derived: int = 0
    rule_applications: int = 0
    facts_by_predicate: dict[str, int] = field(default_factory=dict)


class Database:
    """Predicate name -> set of fact tuples."""

    def __init__(self, facts: dict[str, Relation] | None = None):
        self._facts: dict[str, Relation] = {}
        if facts:
            for predicate, rows in facts.items():
                self._facts[predicate] = set(rows)

    def relation(self, predicate: str) -> Relation:
        return self._facts.get(predicate, set())

    def add(self, predicate: str, fact: Fact) -> bool:
        rows = self._facts.setdefault(predicate, set())
        if fact in rows:
            return False
        rows.add(fact)
        return True

    def predicates(self) -> frozenset[str]:
        return frozenset(self._facts)

    def count(self, predicate: str) -> int:
        return len(self._facts.get(predicate, ()))

    def copy(self) -> "Database":
        return Database({p: set(rows) for p, rows in self._facts.items()})


def _match_atom(
    atom: Atom, relation: Relation, bindings: dict[Var, object]
) -> list[dict[Var, object]]:
    """All extensions of ``bindings`` that satisfy ``atom`` in ``relation``."""
    results: list[dict[Var, object]] = []
    for fact in relation:
        extended = dict(bindings)
        for term, value in zip(atom.terms, fact):
            if isinstance(term, Const):
                if term.value != value:
                    break
            else:
                bound = extended.get(term)
                if bound is None:
                    extended[term] = value
                elif bound != value:
                    break
        else:
            results.append(extended)
    return results


def _apply_rule(
    rule: Rule,
    relations: list[Relation],
    stats: EvaluationStats,
) -> Relation:
    """Derive the head facts of one rule against given body relations."""
    stats.rule_applications += 1
    bindings_list: list[dict[Var, object]] = [{}]
    for atom, relation in zip(rule.body, relations):
        if not relation:
            return set()
        next_bindings: list[dict[Var, object]] = []
        for bindings in bindings_list:
            next_bindings.extend(_match_atom(atom, relation, bindings))
        bindings_list = next_bindings
        if not bindings_list:
            return set()
    derived: Relation = set()
    for bindings in bindings_list:
        fact = tuple(
            term.value if isinstance(term, Const) else bindings[term]
            for term in rule.head.terms
        )
        derived.add(fact)
    return derived


def naive_evaluate(
    program: Program, edb: Database
) -> tuple[Database, EvaluationStats]:
    """Naive bottom-up fixpoint: recompute every rule fully each round."""
    stats = EvaluationStats()
    database = edb.copy()
    idb = program.idb_predicates()
    _check_edb(program, edb)
    changed = True
    while changed:
        changed = False
        stats.rounds += 1
        for rule in program.rules:
            relations = [database.relation(atom.predicate) for atom in rule.body]
            if rule.is_fact:
                derived = _apply_rule(rule, [], stats)
            else:
                derived = _apply_rule(rule, relations, stats)
            for fact in derived:
                if database.add(rule.head.predicate, fact):
                    stats.facts_derived += 1
                    changed = True
    _record_counts(stats, database, idb)
    return database, stats


def seminaive_evaluate(
    program: Program, edb: Database
) -> tuple[Database, EvaluationStats]:
    """Semi-naive bottom-up fixpoint with per-predicate deltas."""
    stats = EvaluationStats()
    database = edb.copy()
    idb = program.idb_predicates()
    _check_edb(program, edb)

    # Round 0: apply every rule on the current (EDB-only) database.
    delta: dict[str, Relation] = {predicate: set() for predicate in idb}
    stats.rounds += 1
    for rule in program.rules:
        relations = [database.relation(atom.predicate) for atom in rule.body]
        derived = _apply_rule(rule, relations, stats)
        for fact in derived:
            if database.add(rule.head.predicate, fact):
                stats.facts_derived += 1
                delta[rule.head.predicate].add(fact)

    while any(delta.values()):
        stats.rounds += 1
        new_delta: dict[str, Relation] = {predicate: set() for predicate in idb}
        for rule in program.rules:
            if rule.is_fact:
                continue
            idb_positions = [
                position
                for position, atom in enumerate(rule.body)
                if atom.predicate in idb
            ]
            if not idb_positions:
                continue  # already saturated in round 0
            for delta_position in idb_positions:
                delta_relation = delta.get(rule.body[delta_position].predicate, set())
                if not delta_relation:
                    continue
                relations = []
                for position, atom in enumerate(rule.body):
                    if position == delta_position:
                        relations.append(delta_relation)
                    else:
                        relations.append(database.relation(atom.predicate))
                derived = _apply_rule(rule, relations, stats)
                for fact in derived:
                    if fact not in database.relation(rule.head.predicate):
                        new_delta[rule.head.predicate].add(fact)
        for predicate, facts in new_delta.items():
            for fact in facts:
                if database.add(predicate, fact):
                    stats.facts_derived += 1
        delta = new_delta

    _record_counts(stats, database, idb)
    return database, stats


def _check_edb(program: Program, edb: Database) -> None:
    overlap = program.idb_predicates() & edb.predicates()
    if overlap:
        raise DatalogError(
            f"EDB provides facts for derived predicates: {sorted(overlap)}"
        )


def _record_counts(
    stats: EvaluationStats, database: Database, idb: frozenset[str]
) -> None:
    stats.facts_by_predicate = {
        predicate: database.count(predicate) for predicate in sorted(idb)
    }
