"""Compressed-sparse-row adjacency and frontier-based Kleene closure.

The recursive operators (``Star`` / ``Repeat`` / open ``Repeat``) used to
run as packed-pair *delta iteration* (:func:`repro.relation.delta_transitive_fixpoint`):
every round re-joined the freshly discovered pairs against the base
relation through hash or ``searchsorted`` probes and re-deduplicated
against the whole accumulator.  This module replaces that hot path with
the classic semi-naive *frontier* formulation used by Datalog and graph
engines:

* :class:`CSR` — the base relation compiled once into ``(offsets,
  targets)`` compressed sparse row form, built in O(n + m) from a
  ``BY_SRC``-sorted :class:`~repro.relation.Relation` (plus a
  :meth:`~CSR.transpose` for target-major traversal).  One step from a
  node is an *offset-indexed slice*, not a hash lookup or binary search.
* per-source frontiers — closure is computed source by source by
  breadth-first expansion; a node enters the frontier at most once per
  source, tracked by a **visited bitset** (a Python big-int per source:
  membership is one ``&``, insertion one ``|``, both word-parallel C
  operations instead of the delta loop's per-pair hashing).  Decoded
  bitsets materialize as boolean vectors through ``numpy.unpackbits``
  when the set is wide and numpy is available.
* power iteration — :func:`relation_power` and :func:`bounded_powers`
  advance per-source *level sets* through the same CSR (adjacency
  bitsets on the scalar path, packed-key expansion on the numpy path),
  with the same early-saturation fingerprinting as the reference
  semantics.

Two scheduling tricks make the closure loop near-linear in practice:
sources are processed in **DFS postorder**, so by the time a source is
closed most of its successors already are; and a traversal that reaches
a *finished* source absorbs that source's whole closure in one ``|=``
instead of re-walking its subgraph (finished closures are complete, so
this is exact even on cycles — within a strongly connected component
the first member closed walks the cycle and the rest absorb it).

Entry points mirror :mod:`repro.relation`'s recursion kernels
(:func:`transitive_fixpoint`, :func:`bounded_powers`,
:func:`relation_power`) and those kernels now delegate here whenever the
id space is dense (:func:`supports`).  Node ids must be small enough to
index bitsets and CSR offsets — the dense interned ids produced by
:class:`repro.graph.graph.Graph` always are.  Correctness is pinned by
property tests against the independent tuple-set oracle in
:mod:`repro.rpq.semantics`.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

from repro import relation as rel
from repro.errors import ValidationError
from repro.relation import Order, Relation

_SHIFT = rel._SHIFT
_MASK = rel._MASK

#: Ids must stay below this for the bitset/CSR representation to make
#: sense (a visited bitset is O(max_id) bits *per source*).  Graph
#: interning produces dense ids, so real workloads sit far below; the
#: :mod:`repro.relation` wrappers fall back to delta iteration above it.
MAX_DENSE_NODE = 1 << 22

#: Bitsets at least this many bytes wide decode through numpy
#: (``unpackbits`` + ``flatnonzero``); narrower ones through the byte
#: table below, which has no per-call dispatch overhead.
_WIDE_BITSET_BYTES = 512

#: Bit positions set in each byte value — drives bitset -> id decoding.
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
)


def _np():
    """The numpy module when the vectorized path is allowed, else None."""
    if rel._np is not None and not rel._FORCE_PURE_PYTHON:
        return rel._np
    return None


def _vectorize(size: int) -> bool:
    return _np() is not None and size >= rel._VECTOR_MIN


class CSR:
    """A binary relation in compressed sparse row form.

    ``targets[offsets[u]:offsets[u + 1]]`` are the successors of node
    ``u``, ascending and duplicate-free.  ``n`` bounds every id that
    appears (as source *or* target), so any node produced by an
    expansion can itself be expanded by plain offset indexing.
    """

    __slots__ = ("n", "offsets", "targets", "relation")

    def __init__(self, n: int, offsets: array, targets: array, relation: Relation):
        self.n = n
        self.offsets = offsets
        self.targets = targets
        #: The BY_SRC-sorted relation the CSR was compiled from (the
        #: columns are shared, not copied — treat both as immutable).
        self.relation = relation

    @classmethod
    def from_relation(cls, relation: Relation, n: int | None = None) -> "CSR":
        """Compile ``relation`` into CSR form in O(n + m).

        ``relation`` is sorted/deduplicated first unless its tracked
        order already is ``BY_SRC`` (index scans and union outputs are,
        so the common engine path pays no extra sort).  A declared
        ``n`` is trusted — it must bound every id in the relation (the
        kernels pass the precomputed :func:`dense_bound`, so the hot
        path scans the columns once; an id at or past a too-small ``n``
        fails loudly in the offsets fill).  It may also widen the id
        space beyond the relation's own ids, e.g. to cover every graph
        node for identity seeding.
        """
        sorted_rel = relation.sorted_by(Order.BY_SRC)
        if n is None:
            n = _relation_bound(sorted_rel)
        if n > MAX_DENSE_NODE:
            raise ValidationError(
                f"CSR needs dense node ids; got id space {n} > {MAX_DENSE_NODE}"
            )
        numpy = _np()
        if numpy is not None and len(sorted_rel) >= rel._VECTOR_MIN:
            counts = numpy.bincount(rel._view(sorted_rel.src), minlength=n)
            offsets_np = numpy.zeros(n + 1, dtype=numpy.int64)
            numpy.cumsum(counts, out=offsets_np[1:])
            offsets = rel._column(offsets_np)
        else:
            offsets = array("q", bytes(8 * (n + 1)))
            for source in sorted_rel.src:
                offsets[source + 1] += 1
            total = 0
            for i in range(1, n + 1):
                total += offsets[i]
                offsets[i] = total
        return cls(n, offsets, sorted_rel.tgt, sorted_rel)

    def __len__(self) -> int:
        """Number of edges (pairs) in the relation."""
        return len(self.targets)

    def out_degree(self, node: int) -> int:
        return self.offsets[node + 1] - self.offsets[node]

    def neighbors(self, node: int) -> Sequence[int]:
        """Successors of ``node``, ascending (an O(1) slice)."""
        return self.targets[self.offsets[node] : self.offsets[node + 1]]

    def transpose(self) -> "CSR":
        """The CSR of the inverse relation (targets become sources)."""
        return CSR.from_relation(rel.swap(self.relation), self.n)

    def adjacency_bitsets(self) -> dict[int, int]:
        """Per-source successor bitsets (only sources with successors)."""
        offsets, targets = self.offsets, self.targets
        adjacency: dict[int, int] = {}
        position = 0
        for node in range(self.n):
            end = offsets[node + 1]
            if position < end:
                bits = 0
                # repro: ignore[deadline-loop] bounded scan of one neighbor range
                while position < end:
                    bits |= 1 << targets[position]
                    position += 1
                adjacency[node] = bits
        return adjacency


def _relation_bound(relation: Relation) -> int:
    """``max id + 1`` over both columns (0 for the empty relation)."""
    if not len(relation):
        return 0
    if _np() is not None and len(relation) >= rel._VECTOR_MIN:
        return int(
            max(rel._view(relation.src).max(), rel._view(relation.tgt).max())
        ) + 1
    return max(max(relation.src), max(relation.tgt)) + 1


def _ids_bound(node_ids) -> int:
    if isinstance(node_ids, range):
        return (node_ids[-1] + 1) if len(node_ids) else 0
    node_ids = list(node_ids)
    return (max(node_ids) + 1) if node_ids else 0


def dense_bound(node_ids, base: Relation) -> int:
    """``max id + 1`` over ``node_ids`` and both relation columns.

    Callers (the :mod:`repro.relation` wrappers) compute this once and
    pass it to the kernels as ``bound``, so the hot path scans the
    columns a single time.
    """
    return max(_ids_bound(node_ids), _relation_bound(base))


def supports(node_ids, base: Relation) -> bool:
    """Whether the id space is dense enough for bitset/CSR closure."""
    return dense_bound(node_ids, base) <= MAX_DENSE_NODE


# -- public kernels ------------------------------------------------------------


def transitive_fixpoint(
    node_ids, base: Relation, low: int, bound: int | None = None,
    workers: int = 1, deadline=None,
) -> Relation:
    """``base^low ∪ base^{low+1} ∪ ...`` by frontier-based closure.

    Semantics match :func:`repro.rpq.semantics.transitive_fixpoint`:
    ``low == 0`` unions in the identity over ``node_ids``.  ``bound``
    is an optional precomputed :func:`dense_bound`.  ``workers > 1``
    partitions the source schedule across threads (see
    :func:`closure_bitsets`); the sequential path is the default and
    the oracle the parallel path is tested against.  ``deadline`` (a
    :class:`repro.faults.Deadline`) is checked cooperatively inside the
    closure loops — the one place a query's running time is not bounded
    by the plan shape.
    """
    ids = node_ids if isinstance(node_ids, range) else list(node_ids)
    if not len(base):
        return rel.identity(ids) if low == 0 else Relation.empty()
    csr = CSR.from_relation(base, bound if bound is not None else dense_bound(ids, base))
    reach = closure_bitsets(csr, workers=workers, deadline=deadline)
    if low <= 1:
        answers = reach
    else:
        answers = {}
        for source, bits in _py_power_bitsets(csr, low).items():
            total = bits
            for node in _iter_bits(bits):
                extension = reach.get(node)
                if extension:
                    total |= extension
            answers[source] = total
    return _emit_bitsets(answers, ids if low == 0 else None)


def partitioned_closure(
    node_ids, parts: Sequence[Relation], low: int = 0, workers: int = 1,
    deadline=None,
) -> Relation:
    """Kleene closure of a base relation scattered across shards.

    The sharded engine (:mod:`repro.sharding`) evaluates a ``Star``
    operand per shard, but the closure itself cannot stay shard-local:
    a recursive path may hop between shards on every step, so the
    per-shard base slices are merged (one packed-key union — the slices
    are disjoint by the partition rule) and closed **globally** through
    the frontier engine.  This is the "exactness over locality" point
    of the design: recursion is the one operator that always gathers.

    Delegates to :func:`repro.relation.transitive_fixpoint`, so the
    sparse-id delta fallback and the ``workers`` schedule partitioning
    apply unchanged; with a single part this *is* the unsharded
    closure.
    """
    parts = [part for part in parts if len(part)]
    if not parts:
        ids = node_ids if isinstance(node_ids, range) else list(node_ids)
        return rel.identity(ids) if low == 0 else Relation.empty()
    base = parts[0] if len(parts) == 1 else rel.union(parts)
    return rel.transitive_fixpoint(
        node_ids, base, low, workers=workers, deadline=deadline
    )


def relation_power(
    node_ids, base: Relation, exponent: int, bound: int | None = None
) -> Relation:
    """``base^exponent`` under composition (power 0 is the identity)."""
    ids = node_ids if isinstance(node_ids, range) else list(node_ids)
    if exponent == 0:
        return rel.identity(ids)
    if not len(base):
        return Relation.empty()
    csr = CSR.from_relation(base, bound)
    if _vectorize(len(base)):
        power = _np_base_packed(csr)
        for _ in range(exponent - 1):
            if not len(power):
                break
            power = _np_step(csr, power)
        return rel._unpack_np(power, Order.BY_SRC)
    return _emit_bitsets(_py_power_bitsets(csr, exponent))


def bounded_powers(
    node_ids, base: Relation, low: int, high: int, bound: int | None = None,
    deadline=None,
) -> Relation:
    """``base^low ∪ ... ∪ base^high`` with early saturation.

    Mirrors the oracle exactly: the level set of each power is advanced
    through the CSR, and iteration stops as soon as a whole power
    repeats (powers over a finite node set are eventually periodic).
    ``deadline`` is checked once per power round.
    """
    ids = node_ids if isinstance(node_ids, range) else list(node_ids)
    if not len(base):
        return rel.identity(ids) if low == 0 else Relation.empty()
    csr = CSR.from_relation(base, bound if bound is not None else dense_bound(ids, base))
    if _vectorize(len(base)):
        return _np_bounded_powers(csr, ids, low, high, deadline)
    return _py_bounded_powers(csr, ids, low, high, deadline)


# -- pure-Python path: big-int visited bitsets ---------------------------------


def _iter_bits(bits: int):
    """Set-bit positions of ``bits``, ascending."""
    # repro: ignore[deadline-loop] strictly decreasing popcount; bounded
    while bits:
        lowest = bits & -bits
        yield lowest.bit_length() - 1
        bits ^= lowest


def _postorder(csr: CSR) -> list[int]:
    """DFS postorder over every node with successors.

    Processing sources in this order means a source is closed only
    after (almost) all of its successors are — exactly when the
    finished-source absorption in :func:`closure_bitsets` pays off.
    Only back edges of cycles escape it, and those are healed by the
    absorption itself.
    """
    offsets, targets = csr.offsets, csr.targets
    seen = bytearray(csr.n)
    order: list[int] = []
    for root in range(csr.n):
        if seen[root] or offsets[root] == offsets[root + 1]:
            continue
        # Stack of (node, next position in its neighbor range).
        seen[root] = 1
        stack = [(root, offsets[root])]
        while stack:
            node, position = stack.pop()
            end = offsets[node + 1]
            advanced = False
            while position < end:
                successor = targets[position]
                position += 1
                if not seen[successor]:
                    seen[successor] = 1
                    if offsets[successor] != offsets[successor + 1]:
                        stack.append((node, position))
                        stack.append((successor, offsets[successor]))
                        advanced = True
                        break
            if not advanced:
                order.append(node)
    return order


def closure_bitsets(csr: CSR, workers: int = 1, deadline=None) -> dict[int, int]:
    """``reach(s)`` (targets of paths of length >= 1) for every source.

    Per-source breadth-first frontier expansion with two twists:

    * visited sets are big-int bitsets, so membership and absorption are
      word-parallel C operations;
    * sources are closed in DFS postorder and a traversal that reaches
      an already-*finished* source absorbs its whole closure with one
      ``|=`` instead of re-walking it (finished closures are complete,
      so this is exact even on cycles).

    With ``workers > 1`` the postorder schedule is cut into contiguous
    per-worker slices, each closed on its own thread with a *local*
    finished-source table (absorption never reads another worker's
    table, so no synchronization is needed mid-flight), and the slice
    tables are merged at the end.  Every per-source expansion is exact
    on its own — absorption is purely an accelerator — so the partition
    changes scheduling, never answers; the sequential path stays the
    default and is the oracle the parallel path is property-tested
    against.  Under CPython's GIL the big-int kernels do not overlap,
    so this is a correctness/plumbing knob more than a speedup one.
    """
    schedule = _postorder(csr)
    if workers <= 1 or len(schedule) < 2:
        return _close_slice(csr, schedule, {}, deadline)
    workers = min(workers, len(schedule))
    chunk = (len(schedule) + workers - 1) // workers
    slices = [
        schedule[start : start + chunk]
        for start in range(0, len(schedule), chunk)
    ]
    from concurrent.futures import ThreadPoolExecutor

    reach: dict[int, int] = {}
    with ThreadPoolExecutor(max_workers=len(slices)) as pool:
        futures = [
            pool.submit(_close_slice, csr, piece, {}, deadline)
            for piece in slices
        ]
        for future in futures:
            # Final absorption merge: slice tables are disjoint by
            # construction (each source is scheduled exactly once).
            reach.update(future.result())
    return reach


def _close_slice(
    csr: CSR, sources: Sequence[int], reach: dict[int, int], deadline=None
) -> dict[int, int]:
    """Close every source in ``sources``, absorbing through ``reach``.

    The deadline is checked per source and per frontier round — the
    granularities that bound how late a cooperative timeout can fire
    without putting a check inside the word-parallel inner loops.
    """
    offsets, targets = csr.offsets, csr.targets
    for source in sources:
        if deadline is not None:
            deadline.check()
        visited = 0
        frontier: list[int] = []
        for position in range(offsets[source], offsets[source + 1]):
            node = targets[position]
            bit = 1 << node
            if visited & bit:
                continue
            visited |= bit
            finished = reach.get(node)
            if finished is not None:
                visited |= finished
            else:
                frontier.append(node)
        while frontier:
            if deadline is not None:
                deadline.check()
            next_frontier: list[int] = []
            for node in frontier:
                for position in range(offsets[node], offsets[node + 1]):
                    successor = targets[position]
                    bit = 1 << successor
                    if visited & bit:
                        continue
                    visited |= bit
                    finished = reach.get(successor)
                    if finished is not None:
                        visited |= finished
                    else:
                        next_frontier.append(successor)
            frontier = next_frontier
        reach[source] = visited
    return reach


def _advance_levels(
    adjacency: dict[int, int], power: dict[int, int]
) -> dict[int, int]:
    """One composition step: each source's level set through the edges."""
    advanced: dict[int, int] = {}
    for source, bits in power.items():
        level = 0
        for node in _iter_bits(bits):
            step = adjacency.get(node)
            if step:
                level |= step
        if level:
            advanced[source] = level
    return advanced


def _py_power_bitsets(csr: CSR, exponent: int) -> dict[int, int]:
    """Non-empty level sets of ``base^exponent`` (exponent >= 1)."""
    adjacency = csr.adjacency_bitsets()
    current = dict(adjacency)
    for _ in range(exponent - 1):
        if not current:
            break
        current = _advance_levels(adjacency, current)
    return current


def _py_bounded_powers(
    csr: CSR, ids, low: int, high: int, deadline=None
) -> Relation:
    adjacency = csr.adjacency_bitsets()
    if low == 0:
        power = {node: 1 << node for node in ids}
    else:
        power = _py_power_bitsets(csr, low)
    accumulated = dict(power)
    seen_powers = {frozenset(power.items())}
    for _ in range(low, high):
        if deadline is not None:
            deadline.check()
        if not power:
            break
        power = _advance_levels(adjacency, power)
        for source, bits in power.items():
            accumulated[source] = accumulated.get(source, 0) | bits
        fingerprint = frozenset(power.items())
        if fingerprint in seen_powers:
            break
        seen_powers.add(fingerprint)
    return _emit_bitsets(accumulated)


def _emit_bitsets(answers: dict[int, int], identity_ids=None) -> Relation:
    """Bitsets -> a BY_SRC-sorted, duplicate-free columnar relation.

    Sources are emitted ascending and each bitset decodes ascending, so
    the output needs no further sort.  ``identity_ids`` additionally
    unions in ``(n, n)`` for every listed node.
    """
    source_column = array("q")
    target_column = array("q")
    if identity_ids is None:
        sources: Iterable[int] = sorted(
            source for source, bits in answers.items() if bits
        )
        membership = None
    else:
        membership = (
            identity_ids if isinstance(identity_ids, range) else set(identity_ids)
        )
        sources = sorted(
            {source for source, bits in answers.items() if bits} | set(membership)
        )
    byte_bits = _BYTE_BITS
    numpy = _np()
    for source in sources:
        bits = answers.get(source, 0)
        if membership is not None and source in membership:
            bits |= 1 << source
        if not bits:
            continue
        # Skip leading zero bytes so narrow bitsets decode in O(range).
        lowest = bits & -bits
        start_byte = (lowest.bit_length() - 1) >> 3
        if start_byte:
            bits >>= start_byte << 3
        base = start_byte << 3
        data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
        before = len(target_column)
        if numpy is not None and len(data) >= _WIDE_BITSET_BYTES:
            # Wide set: materialize as a boolean vector in one C pass.
            flags = numpy.unpackbits(
                numpy.frombuffer(data, dtype=numpy.uint8), bitorder="little"
            )
            decoded = numpy.flatnonzero(flags)
            if base:
                decoded = decoded + base
            target_column.frombytes(decoded.astype(numpy.int64).tobytes())
        else:
            for index, byte in enumerate(data):
                if byte:
                    origin = base + (index << 3)
                    for offset in byte_bits[byte]:
                        target_column.append(origin + offset)
        source_column.extend([source] * (len(target_column) - before))
    return Relation(source_column, target_column, Order.BY_SRC)


# -- numpy path: blocked boolean visited matrices ------------------------------


def _np_columns(csr: CSR):
    numpy = _np()
    offsets = numpy.frombuffer(csr.offsets, dtype=numpy.int64)
    targets = numpy.frombuffer(csr.targets, dtype=numpy.int64)
    return numpy, offsets, targets


def _np_base_packed(csr: CSR):
    sorted_rel = csr.relation
    return rel._pack_np(rel._view(sorted_rel.src), rel._view(sorted_rel.tgt))


def _np_step(csr: CSR, packed):
    """One composition step ``packed ∘ base`` by offset-indexed expansion.

    The delta-iteration ancestor did this with two ``searchsorted``
    probes per round; the CSR makes the neighbor range of every middle
    node a direct ``offsets`` gather.
    """
    numpy, offsets, targets = _np_columns(csr)
    middles = (packed & _MASK).astype(numpy.int64)
    starts = offsets[middles]
    counts = offsets[middles + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return packed[:0]
    heads = numpy.repeat(packed & ~numpy.uint64(_MASK), counts)
    shifts = numpy.cumsum(counts) - counts
    positions = (
        numpy.arange(total, dtype=numpy.int64)
        - numpy.repeat(shifts, counts)
        + numpy.repeat(starts, counts)
    )
    produced = heads | targets[positions].astype(numpy.uint64)
    return rel._np_sorted_unique(produced)


def _np_identity_packed(numpy, ids):
    if isinstance(ids, range):
        column = numpy.arange(ids.start, ids.stop, ids.step, dtype=numpy.int64)
    else:
        column = numpy.fromiter(ids, dtype=numpy.int64, count=len(ids))
    return rel._pack_np(column, column)


def _np_bounded_powers(
    csr: CSR, ids, low: int, high: int, deadline=None
) -> Relation:
    numpy = _np()
    if low == 0:
        power = numpy.sort(_np_identity_packed(numpy, ids))
    else:
        power = _np_base_packed(csr)
        for _ in range(low - 1):
            if deadline is not None:
                deadline.check()
            if not len(power):
                break
            power = _np_step(csr, power)
    levels = [power]
    seen_powers = {power.tobytes()}
    for _ in range(low, high):
        if deadline is not None:
            deadline.check()
        if not len(power):
            break
        power = _np_step(csr, power)
        levels.append(power)
        fingerprint = power.tobytes()
        if fingerprint in seen_powers:
            break
        seen_powers.add(fingerprint)
    packed = rel._np_sorted_unique(numpy.concatenate(levels))
    return rel._unpack_np(packed, Order.BY_SRC)
