"""Columnar ``(source, target)`` relations — the engine's common currency.

Every layer of the pipeline — index scans, merge/hash joins, unions,
fixpoints — manipulates binary relations over dense integer node ids.
Materializing each intermediate as a Python ``set``/``list`` of tuple
objects pays a per-pair allocation plus a tuple hash on the hot path;
this module replaces that with a single *columnar* representation:

* :class:`Relation` — twin ``array('q')`` columns (``src``, ``tgt``)
  plus a tracked sort :class:`Order` (``BY_SRC`` / ``BY_TGT`` /
  ``NONE``).  No per-pair tuples exist until the API boundary converts
  ids back to names (:meth:`Relation.to_frozenset`, iteration).
* columnar kernels — :func:`merge_join`, :func:`hash_join`,
  :func:`union`, :func:`dedup_sort`, :func:`swap`, :func:`compose` —
  that deduplicate through *packed* 64-bit ``src << 32 | tgt`` integer
  keys (cheap int hashing, no tuple allocation) and exploit tracked
  sort orders instead of re-sorting.
* columnar recursion — :func:`transitive_fixpoint`,
  :func:`bounded_powers`, :func:`relation_power` — frontier-based
  semi-naive closure over a compressed-sparse-row adjacency
  (:mod:`repro.csr`), used by the executor's hybrid fallback.  The
  PR-1 packed-pair delta iteration survives as ``delta_*`` twins so the
  closure benchmark can keep measuring the speedup against it.

Representation contract
-----------------------
Node ids are the dense non-negative integers produced by
:class:`repro.graph.graph.Graph` interning; packing assumes
``0 <= id < 2**32`` (4 billion nodes).  A :class:`Relation` whose
``order`` is ``BY_SRC`` is sorted lexicographically by ``(src, tgt)``
and duplicate-free; ``BY_TGT`` likewise by ``(tgt, src)``; ``NONE``
makes no promise (it may still contain duplicates only if a kernel's
docstring says so — every kernel in this module emits duplicate-free
output).  The reference set semantics in :mod:`repro.rpq.semantics`
stays tuple-set based on purpose: it is the independent correctness
oracle the columnar kernels are property-tested against.
"""

from __future__ import annotations

import enum
from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.errors import ExecutionError, ValidationError

try:  # numpy is optional: every kernel has a pure-Python fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _FORCE_PURE_PYTHON
    _np = None

Pair = tuple[int, int]

#: Bits reserved for the target id in a packed pair.
_SHIFT = 32
_MASK = (1 << _SHIFT) - 1

#: Below this many input rows the vectorized kernels lose to plain
#: Python on fixed per-call overhead; stay scalar.
_VECTOR_MIN = 64

#: Test hook: set True to route every kernel through the scalar path.
_FORCE_PURE_PYTHON = False


def _vectorize(*lengths: int) -> bool:
    return (
        _np is not None
        and not _FORCE_PURE_PYTHON
        and sum(lengths) >= _VECTOR_MIN
    )


class Order(enum.Enum):
    """The sort order of a relation (and of a plan's output stream).

    Invariant (machine-checked by ``repro lint``, rule
    ``order-contract``): callers of the order-requiring kernels
    (:func:`merge_join`, :func:`dedup_sort`) validate or propagate the
    declared order — ``NONE`` never reaches a kernel that trusts it.
    """

    BY_SRC = "by_src"
    BY_TGT = "by_tgt"
    NONE = "none"


class Relation:
    """An immutable-by-convention columnar binary relation.

    ``src[i], tgt[i]`` is the i-th pair.  ``order`` records the sort
    order the columns are *known* to satisfy; kernels trust it, so
    constructors declaring ``BY_SRC``/``BY_TGT`` must hand over columns
    that really are sorted and duplicate-free (index scans and the
    kernels in this module do; :meth:`from_pairs` checks nothing).

    The sequence protocol (``len``, indexing, iteration yielding
    ``(src, tgt)`` tuples, equality against any pair sequence) is
    provided for tests and API-boundary code; hot paths should touch
    the columns directly.
    """

    __slots__ = ("src", "tgt", "order", "_frozen_len")

    def __init__(
        self,
        src: array | None = None,
        tgt: array | None = None,
        order: Order = Order.NONE,
    ) -> None:
        self.src = src if src is not None else array("q")
        self.tgt = tgt if tgt is not None else array("q")
        if len(self.src) != len(self.tgt):
            raise ValidationError(
                f"column length mismatch: {len(self.src)} src vs "
                f"{len(self.tgt)} tgt"
            )
        self.order = order
        self._frozen_len: int | None = None

    # -- freezing -------------------------------------------------------

    def freeze(self) -> "Relation":
        """Mark this relation as shared and immutable from here on.

        Relations handed to a cross-thread memo (the batch executor's
        shared :class:`~repro.engine.operators.ScanMemo`) are served to
        every consumer without copying, so mutating their columns after
        the fact would corrupt other queries' answers.  ``array('q')``
        cannot be made read-only, so freezing records the length and
        :meth:`check_frozen` asserts it never changes — catching the
        realistic mutation (an append into a shared column) loudly.
        """
        self._frozen_len = len(self.src)
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen_len is not None

    def check_frozen(self) -> "Relation":
        """Assert the frozen invariant still holds (memo hit path)."""
        if self._frozen_len is not None and self._frozen_len != len(self.src):
            raise ExecutionError(
                f"frozen relation mutated: froze at {self._frozen_len} "
                f"rows, now {len(self.src)}"
            )
        return self

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, order: Order = Order.BY_SRC) -> "Relation":
        """The empty relation (vacuously sorted any way you like)."""
        return cls(array("q"), array("q"), order)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Pair], order: Order = Order.NONE
    ) -> "Relation":
        """Build from ``(src, tgt)`` pairs, trusting the declared order.

        Ids outside ``[0, 2**32)`` are rejected: the join kernels pack
        pairs into 64-bit keys, and out-of-range ids would corrupt
        results silently instead of failing loudly here.
        """
        src = array("q")
        tgt = array("q")
        for a, b in pairs:
            src.append(a)
            tgt.append(b)
        if src:
            low = min(min(src), min(tgt))
            high = max(max(src), max(tgt))
            if low < 0 or high > _MASK:
                raise ValidationError(
                    f"node ids must be in [0, 2**32) for packed-key "
                    f"kernels; got values in [{low}, {high}]"
                )
        return cls(src, tgt, order)

    @classmethod
    def coerce(cls, value, order: Order = Order.NONE) -> "Relation":
        """``value`` as a Relation: pass through, or convert a pair sequence."""
        if isinstance(value, cls):
            return value
        return cls.from_pairs(value, order)

    # -- sequence protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.src)

    def __bool__(self) -> bool:
        return len(self.src) > 0

    def __iter__(self) -> Iterator[Pair]:
        return zip(self.src, self.tgt)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return list(zip(self.src[item], self.tgt[item]))
        return (self.src[item], self.tgt[item])

    def __contains__(self, pair: object) -> bool:
        try:
            a, b = pair  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        for i in range(len(self.src)):
            if self.src[i] == a and self.tgt[i] == b:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self.src == other.src and self.tgt == other.tgt
        if isinstance(other, (list, tuple)):
            return len(other) == len(self.src) and all(
                pair == expected for pair, expected in zip(self, other)
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        preview = ", ".join(str(pair) for pair in self[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return (
            f"Relation(len={len(self)}, order={self.order.value}, "
            f"[{preview}{suffix}])"
        )

    # -- conversions -----------------------------------------------------

    def pairs(self) -> list[Pair]:
        """Materialize the relation as a list of tuples (API boundary)."""
        return list(zip(self.src, self.tgt))

    def to_set(self) -> set[Pair]:
        return set(zip(self.src, self.tgt))

    def to_frozenset(self) -> frozenset:
        return frozenset(zip(self.src, self.tgt))

    def packed(self) -> Iterator[int]:
        """The pairs as packed ``src << 32 | tgt`` integers."""
        shift = _SHIFT
        for a, b in zip(self.src, self.tgt):
            yield (a << shift) | b

    # -- order-aware views ------------------------------------------------

    def sorted_by(self, order: Order) -> "Relation":
        """This relation sorted (and deduplicated) by the given order."""
        if order is Order.NONE or self.order is order:
            return self
        return dedup_sort(self, order)


def _from_packed_sorted(packed: list[int], order: Order) -> Relation:
    """Unpack an already-sorted, duplicate-free packed list.

    For ``BY_TGT`` the packed keys are ``tgt << 32 | src``.
    """
    src = array("q")
    tgt = array("q")
    if order is Order.BY_TGT:
        for key in packed:
            tgt.append(key >> _SHIFT)
            src.append(key & _MASK)
    else:
        for key in packed:
            src.append(key >> _SHIFT)
            tgt.append(key & _MASK)
    return Relation(src, tgt, order)


# -- numpy bridge --------------------------------------------------------------
#
# array('q') is buffer-compatible with numpy, so the vectorized kernels
# operate on zero-copy int64 views of the columns and only pay one C
# memcpy to hand columns back.  Pairs are packed into uint64 keys
# (``high << 32 | low``) so ``np.unique`` gives sort + dedup in one C
# pass, in exactly the lexicographic order the engine tracks.


def _view(column: array):
    """Zero-copy int64 view of one column."""
    return _np.frombuffer(column, dtype=_np.int64)


def _column(values) -> array:
    """A numpy integer vector as a fresh ``array('q')`` column."""
    out = array("q")
    out.frombytes(values.astype(_np.int64, copy=False).tobytes())
    return out


def _pack_np(high, low):
    return (high.astype(_np.uint64) << _SHIFT) | low.astype(_np.uint64)


def _pack_into(high, low, out) -> None:
    """Pack two int64 id vectors into a preallocated uint64 key slice.

    The allocation-free twin of :func:`_pack_np` for the fused gather:
    both ufuncs write straight into ``out``, so an N-way merge packs
    every part into one buffer with zero per-part temporaries.  Ids are
    nonnegative, so the unsafe int64→uint64 casts cannot change values.
    """
    _np.left_shift(high, _SHIFT, out=out, casting="unsafe")
    _np.bitwise_or(out, low.view(_np.uint64), out=out)


def _np_sorted_unique(values):
    """Sorted distinct values of a 1-d key vector.

    Semantically ``np.unique``, but sort + shift-compare directly:
    ``np.unique`` carries ~150µs of Python-level dispatch overhead per
    call, which dominated small-input kernels (the 1k-row ``union``
    regression) and the per-round cost of frontier expansion.
    """
    if len(values) <= 1:
        return values
    values = _np.sort(values)
    keep = _np.empty(len(values), dtype=bool)
    keep[0] = True
    _np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _unpack_np(packed, order: Order) -> Relation:
    high = (packed >> _SHIFT).astype(_np.int64)
    low = (packed & _MASK).astype(_np.int64)
    if order is Order.BY_TGT:
        return Relation(_column(low), _column(high), order)
    return Relation(_column(high), _column(low), order)


def _np_compose(left: Relation, right: Relation) -> Relation:
    """Vectorized composition; output sorted BY_SRC and duplicate-free.

    One side must act as the sorted "build" side for ``searchsorted``:
    ``right`` when it is BY_SRC, ``left`` when it is BY_TGT, otherwise
    ``right`` is sorted on the spot (the vectorized analogue of a hash
    build).
    """
    left_src, left_tgt = _view(left.src), _view(left.tgt)
    right_src, right_tgt = _view(right.src), _view(right.tgt)
    if right.order is Order.BY_SRC:
        probe_mid, build_mid = left_tgt, right_src
        probe_out, build_out = left_src, right_tgt
        probe_is_left = True
    elif left.order is Order.BY_TGT:
        probe_mid, build_mid = right_src, left_tgt
        probe_out, build_out = right_tgt, left_src
        probe_is_left = False
    else:
        sorting = _np.argsort(right_src, kind="stable")
        probe_mid, build_mid = left_tgt, right_src[sorting]
        probe_out, build_out = left_src, right_tgt[sorting]
        probe_is_left = True
    starts = _np.searchsorted(build_mid, probe_mid, side="left")
    ends = _np.searchsorted(build_mid, probe_mid, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return Relation.empty(Order.BY_SRC)
    probe_emitted = _np.repeat(probe_out, counts)
    offsets = _np.cumsum(counts) - counts
    positions = (
        _np.arange(total, dtype=_np.int64)
        - _np.repeat(offsets, counts)
        + _np.repeat(starts, counts)
    )
    build_emitted = build_out[positions]
    if probe_is_left:
        packed = _pack_np(probe_emitted, build_emitted)
    else:
        packed = _pack_np(build_emitted, probe_emitted)
    return _unpack_np(_np_sorted_unique(packed), Order.BY_SRC)


def _np_membership(sorted_keys, candidates):
    """Boolean mask of which ``candidates`` occur in ``sorted_keys``."""
    if len(sorted_keys) == 0:
        return _np.zeros(len(candidates), dtype=bool)
    positions = _np.searchsorted(sorted_keys, candidates)
    positions[positions == len(sorted_keys)] = len(sorted_keys) - 1
    return sorted_keys[positions] == candidates


def _np_expand(delta_packed, base_src, base_tgt):
    """One delta step: packed pairs composed with the sorted base columns."""
    mids = (delta_packed & _MASK).astype(_np.int64)
    starts = _np.searchsorted(base_src, mids, side="left")
    ends = _np.searchsorted(base_src, mids, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return delta_packed[:0]
    heads = _np.repeat(delta_packed & ~_np.uint64(_MASK), counts)
    offsets = _np.cumsum(counts) - counts
    positions = (
        _np.arange(total, dtype=_np.int64)
        - _np.repeat(offsets, counts)
        + _np.repeat(starts, counts)
    )
    produced = heads | base_tgt[positions].astype(_np.uint64)
    return _np_sorted_unique(produced)


def _np_base_columns(base: Relation):
    """(src-sorted packed base as column views) for delta iteration."""
    sorted_base = base if base.order is Order.BY_SRC else dedup_sort(base)
    return _view(sorted_base.src), _view(sorted_base.tgt)


# -- kernels -------------------------------------------------------------------


def dedup_sort(relation: Relation, order: Order = Order.BY_SRC) -> Relation:
    """Sort by ``order`` and drop duplicate pairs (one packed-int sort)."""
    if order is Order.NONE:
        raise ValidationError("dedup_sort needs a concrete order")
    if _vectorize(len(relation)):
        src, tgt = _view(relation.src), _view(relation.tgt)
        if order is Order.BY_TGT:
            packed = _pack_np(tgt, src)
        else:
            packed = _pack_np(src, tgt)
        return _unpack_np(_np_sorted_unique(packed), order)
    if order is Order.BY_TGT:
        keys = {
            (relation.tgt[i] << _SHIFT) | relation.src[i]
            for i in range(len(relation))
        }
    else:
        keys = set(relation.packed())
    return _from_packed_sorted(sorted(keys), order)


def swap(relation: Relation) -> Relation:
    """Exchange source and target columns (zero-copy; order flips)."""
    if relation.order is Order.BY_SRC:
        flipped = Order.BY_TGT
    elif relation.order is Order.BY_TGT:
        flipped = Order.BY_SRC
    else:
        flipped = Order.NONE
    return Relation(relation.tgt, relation.src, flipped)


def identity(node_ids: Iterable[int]) -> Relation:
    """``{(n, n)}`` over ``node_ids`` (ascending ids → sorted both ways)."""
    src = array("q", node_ids)
    return Relation(src, array("q", src), Order.BY_SRC)


def merge_join(left: Relation, right: Relation) -> Relation:
    """Composition ``left ∘ right`` by a two-pointer group merge.

    Preconditions (validated): ``left`` sorted by target, ``right``
    sorted by source — the physical orders an inverse-path scan and a
    direct scan deliver for free.  Output is duplicate-free, unordered.
    """
    if left.order is not Order.BY_TGT or right.order is not Order.BY_SRC:
        raise ExecutionError(
            "merge join requires left sorted by target and right by source; "
            f"got {left.order.value} / {right.order.value}"
        )
    if _vectorize(len(left), len(right)):
        return _np_compose(left, right)
    left_src, left_tgt = left.src, left.tgt
    right_src, right_tgt = right.src, right.tgt
    left_len, right_len = len(left_src), len(right_src)
    out: set[int] = set()
    add = out.add
    i = j = 0
    # repro: ignore[deadline-loop] two-pointer scan bounded by len(left)+len(right)
    while i < left_len and j < right_len:
        key_left = left_tgt[i]
        key_right = right_src[j]
        if key_left < key_right:
            i += 1
        elif key_left > key_right:
            j += 1
        else:
            i_end = i
            # repro: ignore[deadline-loop] group scan bounded by len(left)
            while i_end < left_len and left_tgt[i_end] == key_left:
                i_end += 1
            j_end = j
            # repro: ignore[deadline-loop] group scan bounded by len(right)
            while j_end < right_len and right_src[j_end] == key_right:
                j_end += 1
            targets = right_tgt[j:j_end]
            for source in left_src[i:i_end]:
                base = source << _SHIFT
                for target in targets:
                    add(base | target)
            i, j = i_end, j_end
    return _from_packed_unordered(out)


def hash_join(left: Relation, right: Relation) -> Relation:
    """Composition ``left ∘ right`` building a hash table on the smaller side.

    Vectorized, this becomes a binary-search probe against whichever
    side is already sorted on the join key (sorting the right side if
    neither is) — the columnar analogue of the hash build.
    """
    if _vectorize(len(left), len(right)):
        return _np_compose(left, right)
    out: set[int] = set()
    add = out.add
    if len(left) <= len(right):
        by_target: dict[int, list[int]] = {}
        left_src, left_tgt = left.src, left.tgt
        for i, target in enumerate(left_tgt):
            by_target.setdefault(target, []).append(left_src[i])
        get = by_target.get
        right_src, right_tgt = right.src, right.tgt
        for j, mid in enumerate(right_src):
            sources = get(mid)
            if sources:
                target = right_tgt[j]
                for source in sources:
                    add((source << _SHIFT) | target)
    else:
        by_source: dict[int, list[int]] = {}
        right_src, right_tgt = right.src, right.tgt
        for j, mid in enumerate(right_src):
            by_source.setdefault(mid, []).append(right_tgt[j])
        get = by_source.get
        left_src, left_tgt = left.src, left.tgt
        for i, mid in enumerate(left_tgt):
            targets = get(mid)
            if targets:
                base = left_src[i] << _SHIFT
                for target in targets:
                    add(base | target)
    return _from_packed_unordered(out)


def compose(left: Relation, right: Relation) -> Relation:
    """``left ∘ right`` picking the physical algorithm from tracked orders."""
    if not left or not right:
        return Relation.empty()
    if left.order is Order.BY_TGT and right.order is Order.BY_SRC:
        return merge_join(left, right)
    return hash_join(left, right)


def union(parts: Iterable[Relation]) -> Relation:
    """Duplicate-eliminating union, emitted sorted by source.

    Below the vectorization crossover (``_VECTOR_MIN`` input rows) a
    plain packed-set union runs instead — fixed numpy dispatch overhead
    loses to a C-speed ``set`` at small sizes.  A union of one already
    ``BY_SRC``-sorted part (the common single-disjunct plan) is
    returned as-is, zero-copy.
    """
    parts = [part for part in parts if len(part)]
    if not parts:
        return Relation.empty(Order.BY_SRC)
    if len(parts) == 1:
        only = parts[0]
        return only if only.order is Order.BY_SRC else dedup_sort(only)
    if _vectorize(sum(len(part) for part in parts)):
        packed = _np.concatenate(
            [_pack_np(_view(part.src), _view(part.tgt)) for part in parts]
        )
        return _unpack_np(_np_sorted_unique(packed), Order.BY_SRC)
    keys: set[int] = set()
    for part in parts:
        keys.update(part.packed())
    return _from_packed_sorted(sorted(keys), Order.BY_SRC)


#: Test hook: set True to verify the ``disjoint=True`` contract of
#: :func:`union_into` on every call (one extra pass; off in production).
_CHECK_DISJOINT = False


def union_into(parts: Iterable[Relation], disjoint: bool = False) -> Relation:
    """Fused N-way union into one preallocated packed-key buffer.

    The gather-side merge of scatter-gather execution: instead of
    concatenating per-part packed temporaries and re-scanning for
    duplicates (:func:`union`), the exact output size is known up front
    (each part is already materialized and duplicate-free), so every
    part packs straight into one buffer which is then sorted in place.

    ``disjoint=True`` additionally skips duplicate elimination — sound
    exactly when the parts are pairwise disjoint *and* individually
    duplicate-free.  Shard slices pinned to owner shards satisfy both:
    every pair's source is owned by the producing shard and owner sets
    partition the vertices (see
    :func:`repro.engine.operators.execute_scattered`).  Output is
    sorted ``BY_SRC`` either way.
    """
    parts = [part for part in parts if len(part)]
    if not parts:
        return Relation.empty(Order.BY_SRC)
    if len(parts) == 1:
        only = parts[0]
        if only.order is Order.BY_SRC:
            return only
        if not disjoint:
            return dedup_sort(only)
    total = sum(len(part) for part in parts)
    if _vectorize(total):
        buffer = _np.empty(total, dtype=_np.uint64)
        offset = 0
        for part in parts:
            _pack_into(
                _view(part.src),
                _view(part.tgt),
                buffer[offset : offset + len(part)],
            )
            offset += len(part)
        buffer.sort()
        if _CHECK_DISJOINT and disjoint and len(buffer) > 1:
            if bool((buffer[1:] == buffer[:-1]).any()):
                raise ExecutionError(
                    "union_into(disjoint=True) received overlapping parts"
                )
        if not disjoint:
            keep = _np.empty(total, dtype=bool)
            keep[0] = True
            _np.not_equal(buffer[1:], buffer[:-1], out=keep[1:])
            buffer = buffer[keep]
        return _unpack_np(buffer, Order.BY_SRC)
    keys: list[int] = []
    for part in parts:
        keys.extend(part.packed())
    keys.sort()
    if _CHECK_DISJOINT and disjoint and any(
        keys[i] == keys[i - 1] for i in range(1, len(keys))
    ):
        raise ExecutionError(
            "union_into(disjoint=True) received overlapping parts"
        )
    if not disjoint:
        keys = [key for i, key in enumerate(keys) if i == 0 or key != keys[i - 1]]
    return _from_packed_sorted(keys, Order.BY_SRC)


def restrict_src(relation: Relation, source: int) -> Relation:
    """The pairs of ``relation`` whose source is exactly ``source``.

    A ``BY_SRC`` relation answers with two binary searches and a
    zero-copy-ish column slice; any other order pays one scan.  Used by
    the prepared-statement layer to apply a ``from($v):`` anchor to an
    already-executed full relation.
    """
    if relation.order is Order.BY_SRC:
        low = bisect_left(relation.src, source)
        high = bisect_right(relation.src, source, low)
        return Relation(
            relation.src[low:high], relation.tgt[low:high], Order.BY_SRC
        )
    src = array("q")
    tgt = array("q")
    for i in range(len(relation)):
        if relation.src[i] == source:
            src.append(source)
            tgt.append(relation.tgt[i])
    return Relation(src, tgt, Order.NONE)


def _from_packed_unordered(keys: set[int]) -> Relation:
    src = array("q")
    tgt = array("q")
    for key in keys:
        src.append(key >> _SHIFT)
        tgt.append(key & _MASK)
    return Relation(src, tgt, Order.NONE)


# -- recursion -----------------------------------------------------------------
#
# The public kernels delegate to the frontier-based CSR closure engine
# (:mod:`repro.csr`) whenever the id space is dense (graph-interned ids
# always are).  The PR-1 packed-pair delta iteration below is kept both
# as the fallback for sparse id spaces and as the stable baseline the
# closure benchmark (``benchmarks/bench_closure.py``) measures against.


def transitive_fixpoint(
    node_ids: Iterable[int], base: Relation, low: int, workers: int = 1,
    deadline=None,
) -> Relation:
    """``base^low ∪ base^{low+1} ∪ ...`` to fixpoint.

    Runs as per-source frontier expansion over a CSR adjacency
    (:func:`repro.csr.transitive_fixpoint`); falls back to packed-pair
    delta iteration when ids are too sparse for bitsets.  ``workers``
    partitions the closure's source schedule across threads (sequential
    by default; see :func:`repro.csr.closure_bitsets`).  ``deadline``
    bounds both paths cooperatively (checked per source / per round).
    """
    from repro import csr

    ids = node_ids if isinstance(node_ids, range) else list(node_ids)
    bound = csr.dense_bound(ids, base)
    if bound <= csr.MAX_DENSE_NODE:
        return csr.transitive_fixpoint(ids, base, low, bound, workers, deadline)
    return delta_transitive_fixpoint(ids, base, low, deadline)


def relation_power(
    node_ids: Iterable[int], base: Relation, exponent: int
) -> Relation:
    """``base^exponent`` under composition (power 0 is the identity)."""
    from repro import csr

    ids = node_ids if isinstance(node_ids, range) else list(node_ids)
    bound = csr.dense_bound(ids, base)
    if bound <= csr.MAX_DENSE_NODE:
        return csr.relation_power(ids, base, exponent, bound)
    return delta_relation_power(ids, base, exponent)


def bounded_powers(
    node_ids: Iterable[int], base: Relation, low: int, high: int,
    deadline=None,
) -> Relation:
    """``base^low ∪ ... ∪ base^high`` with early saturation."""
    from repro import csr

    ids = node_ids if isinstance(node_ids, range) else list(node_ids)
    bound = csr.dense_bound(ids, base)
    if bound <= csr.MAX_DENSE_NODE:
        return csr.bounded_powers(ids, base, low, high, bound, deadline)
    return delta_bounded_powers(ids, base, low, high)


# -- delta iteration over packed pair sets (pre-CSR baseline) ------------------


def _adjacency(base: Relation) -> dict[int, list[int]]:
    by_source: dict[int, list[int]] = {}
    base_src, base_tgt = base.src, base.tgt
    for i, source in enumerate(base_src):
        by_source.setdefault(source, []).append(base_tgt[i])
    return by_source


def _expand(
    delta: Iterable[int], by_source: dict[int, list[int]], seen: set[int]
) -> list[int]:
    """One delta step: compose packed ``delta`` with ``by_source``, minus ``seen``."""
    fresh: list[int] = []
    get = by_source.get
    add = seen.add
    for key in delta:
        targets = get(key & _MASK)
        if targets:
            base = key & ~_MASK
            for target in targets:
                packed = base | target
                if packed not in seen:
                    add(packed)
                    fresh.append(packed)
    return fresh


def delta_transitive_fixpoint(
    node_ids: Iterable[int], base: Relation, low: int, deadline=None
) -> Relation:
    """``base^low ∪ base^{low+1} ∪ ...`` by packed delta iteration.

    Only newly discovered pairs are re-expanded, so cyclic graphs
    terminate; ``low == 0`` seeds the accumulator with the identity.
    The deadline is checked once per delta round.
    """
    if _vectorize(len(base)):
        return _np_transitive_fixpoint(node_ids, base, low, deadline)
    by_source = _adjacency(base)
    if low <= 1:
        delta = list(base.packed())
        if low == 0:
            accumulated = {(n << _SHIFT) | n for n in node_ids}
            accumulated.update(delta)
        else:
            accumulated = set(delta)
    else:
        power = delta_relation_power(node_ids, base, low)
        accumulated = set(power.packed())
        delta = list(accumulated)
    while delta:
        if deadline is not None:
            deadline.check()
        delta = _expand(delta, by_source, accumulated)
    return _from_packed_sorted(sorted(accumulated), Order.BY_SRC)


def delta_relation_power(
    node_ids: Iterable[int], base: Relation, exponent: int
) -> Relation:
    """``base^exponent`` under composition (power 0 is the identity)."""
    if exponent == 0:
        return identity(node_ids)
    result = base
    for _ in range(exponent - 1):
        result = hash_join(result, base)
        if not result:
            break
    return result


def delta_bounded_powers(
    node_ids: Iterable[int], base: Relation, low: int, high: int
) -> Relation:
    """``base^low ∪ ... ∪ base^high`` with early saturation.

    Powers of a relation over a finite node set are eventually periodic;
    once a power repeats, the remaining union is already accumulated.
    """
    if _vectorize(len(base)):
        return _np_bounded_powers(node_ids, base, low, high)
    by_source = _adjacency(base)
    power = set(delta_relation_power(node_ids, base, low).packed())
    accumulated = set(power)
    seen_powers: set[frozenset] = {frozenset(power)}
    for _ in range(low, high):
        if not power:
            break
        next_power: set[int] = set()
        get = by_source.get
        for key in power:
            targets = get(key & _MASK)
            if targets:
                head = key & ~_MASK
                for target in targets:
                    next_power.add(head | target)
        power = next_power
        accumulated |= power
        fingerprint = frozenset(power)
        if fingerprint in seen_powers:
            break
        seen_powers.add(fingerprint)
    return _from_packed_sorted(sorted(accumulated), Order.BY_SRC)


def _np_transitive_fixpoint(
    node_ids: Iterable[int], base: Relation, low: int, deadline=None
) -> Relation:
    base_src, base_tgt = _np_base_columns(base)
    base_packed = _pack_np(base_src, base_tgt)
    if low == 0:
        ids = _np.fromiter(node_ids, dtype=_np.int64)
        accumulated = _np.union1d(_pack_np(ids, ids), base_packed)
        delta = base_packed
    elif low == 1:
        accumulated = base_packed
        delta = base_packed
    else:
        power = delta_relation_power(node_ids, base, low).sorted_by(Order.BY_SRC)
        accumulated = _pack_np(_view(power.src), _view(power.tgt))
        delta = accumulated
    while len(delta):
        if deadline is not None:
            deadline.check()
        produced = _np_expand(delta, base_src, base_tgt)
        fresh = produced[~_np_membership(accumulated, produced)]
        if not len(fresh):
            break
        accumulated = _np.union1d(accumulated, fresh)
        delta = fresh
    return _unpack_np(accumulated, Order.BY_SRC)


def _np_bounded_powers(
    node_ids: Iterable[int], base: Relation, low: int, high: int
) -> Relation:
    base_src, base_tgt = _np_base_columns(base)
    start = delta_relation_power(node_ids, base, low).sorted_by(Order.BY_SRC)
    power = _pack_np(_view(start.src), _view(start.tgt))
    accumulated = power
    seen_powers = {power.tobytes()}
    for _ in range(low, high):
        if not len(power):
            break
        power = _np_expand(power, base_src, base_tgt)
        accumulated = _np.union1d(accumulated, power)
        fingerprint = power.tobytes()
        if fingerprint in seen_powers:
            break
        seen_powers.add(fingerprint)
    return _unpack_np(accumulated, Order.BY_SRC)
