"""Memcomparable tuple encoding.

The disk B+tree stores raw byte keys and compares them with ``bytes``
ordering.  This codec maps tuples of ints, floats, strings and bytes to
byte strings such that **byte order equals tuple order**, and a tuple
that is a prefix of another encodes to a byte prefix of the other's
encoding (so byte-prefix scans implement tuple-prefix scans — the
``I_{G,k}(p, a)`` lookups).

Per-element encodings (each prefixed by a one-byte type tag so mixed
columns still order deterministically: int < float < str < bytes):

* **int** — signed 64-bit, big-endian, with the sign bit flipped
  (classic bias trick) so two's-complement order matches byte order;
* **float** — IEEE-754 big-endian bits; negative values have all bits
  inverted, non-negatives the sign bit set;
* **str / bytes** — the payload with ``0x00`` escaped as ``0x00 0xFF``,
  terminated by ``0x00 0x00``.  The terminator sorts below every
  escaped byte, so shorter strings sort first, as required.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.errors import StorageError

_TAG_INT = b"\x01"
_TAG_FLOAT = b"\x02"
_TAG_STR = b"\x03"
_TAG_BYTES = b"\x04"

_INT_BIAS = 1 << 63
_INT_MIN = -(1 << 63)
_INT_MAX = (1 << 63) - 1
_TERMINATOR = b"\x00\x00"


def _encode_int(value: int) -> bytes:
    if not _INT_MIN <= value <= _INT_MAX:
        raise StorageError(f"integer out of 64-bit range: {value}")
    return _TAG_INT + (value + _INT_BIAS).to_bytes(8, "big")


def _decode_int(data: memoryview, offset: int) -> tuple[int, int]:
    raw = int.from_bytes(data[offset : offset + 8], "big")
    return raw - _INT_BIAS, offset + 8


def _encode_float(value: float) -> bytes:
    bits = struct.unpack(">Q", struct.pack(">d", value))[0]
    if bits & (1 << 63):
        bits ^= (1 << 64) - 1
    else:
        bits |= 1 << 63
    return _TAG_FLOAT + bits.to_bytes(8, "big")


def _decode_float(data: memoryview, offset: int) -> tuple[float, int]:
    bits = int.from_bytes(data[offset : offset + 8], "big")
    if bits & (1 << 63):
        bits &= (1 << 63) - 1
    else:
        bits ^= (1 << 64) - 1
    value = struct.unpack(">d", struct.pack(">Q", bits))[0]
    return value, offset + 8


def _escape(payload: bytes) -> bytes:
    return payload.replace(b"\x00", b"\x00\xff") + _TERMINATOR


def _unescape(data: memoryview, offset: int) -> tuple[bytes, int]:
    out = bytearray()
    length = len(data)
    position = offset
    while position < length:
        byte = data[position]
        if byte != 0:
            out.append(byte)
            position += 1
            continue
        if position + 1 >= length:
            raise StorageError("truncated string encoding")
        marker = data[position + 1]
        if marker == 0xFF:
            out.append(0)
            position += 2
        elif marker == 0x00:
            return bytes(out), position + 2
        else:
            raise StorageError(f"corrupt escape sequence 0x00 0x{marker:02x}")
    raise StorageError("unterminated string encoding")


def encode_key(values: Sequence[object]) -> bytes:
    """Encode a tuple of ints/floats/strs/bytes memcomparably."""
    parts: list[bytes] = []
    for value in values:
        if isinstance(value, bool):
            raise StorageError("bool keys are ambiguous; use int 0/1 explicitly")
        if isinstance(value, int):
            parts.append(_encode_int(value))
        elif isinstance(value, float):
            parts.append(_encode_float(value))
        elif isinstance(value, str):
            parts.append(_TAG_STR + _escape(value.encode("utf-8")))
        elif isinstance(value, bytes):
            parts.append(_TAG_BYTES + _escape(value))
        else:
            raise StorageError(
                f"unsupported key element type: {type(value).__name__}"
            )
    return b"".join(parts)


def decode_key(encoded: bytes) -> tuple:
    """Inverse of :func:`encode_key`."""
    view = memoryview(encoded)
    offset = 0
    values: list[object] = []
    while offset < len(view):
        tag = view[offset : offset + 1].tobytes()
        offset += 1
        if tag == _TAG_INT:
            value, offset = _decode_int(view, offset)
        elif tag == _TAG_FLOAT:
            value, offset = _decode_float(view, offset)
        elif tag == _TAG_STR:
            raw, offset = _unescape(view, offset)
            value = raw.decode("utf-8")
        elif tag == _TAG_BYTES:
            value, offset = _unescape(view, offset)
        else:
            raise StorageError(f"unknown type tag {tag!r} at offset {offset - 1}")
        values.append(value)
    return tuple(values)


def encode_many(rows: Iterable[Sequence[object]]) -> list[bytes]:
    """Encode an iterable of tuples (convenience for bulk loads)."""
    return [encode_key(row) for row in rows]
