"""A minimal typed relation over a B+tree.

The paper stores both the path index and the histogram as PostgreSQL
tables.  :class:`Table` provides the corresponding abstraction here:
a schema of typed columns, a primary key that is a prefix of the
columns, storage in an ordered tree (so primary-key prefix scans are
cheap), and JSON persistence for catalogs and statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.errors import StorageError, ValidationError
from repro.storage.memtree import BPlusTree

_TYPES: dict[str, type] = {"int": int, "float": float, "str": str}


@dataclass(frozen=True, slots=True)
class Column:
    """One table column: a name and a type tag (``int|float|str``)."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in _TYPES:
            raise ValidationError(
                f"column {self.name!r}: unknown type {self.type!r} "
                f"(expected one of {sorted(_TYPES)})"
            )

    def check(self, value: Any) -> Any:
        expected = _TYPES[self.type]
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if not isinstance(value, expected) or isinstance(value, bool):
            raise ValidationError(
                f"column {self.name!r} expects {self.type}, got {value!r}"
            )
        return value


class Table:
    """An ordered relation with a primary-key prefix.

    >>> table = Table("paths", [Column("path", "str"), Column("count", "int")],
    ...               key_width=1)
    >>> table.insert(("knows", 42))
    >>> table.lookup(("knows",))[0]
    ('knows', 42)
    """

    def __init__(self, name: str, columns: Sequence[Column], key_width: int):
        if not columns:
            raise ValidationError("a table needs at least one column")
        if not 1 <= key_width <= len(columns):
            raise ValidationError(
                f"key_width must be within 1..{len(columns)}, got {key_width}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate column names in {names}")
        self.name = name
        self.columns = tuple(columns)
        self.key_width = key_width
        self._tree = BPlusTree()

    # -- mutation -----------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> None:
        """Insert a full row; the key prefix must be unique."""
        checked = self._check_row(row)
        key = checked[: self.key_width]
        if key in self._tree:
            raise StorageError(f"{self.name}: duplicate primary key {key!r}")
        self._tree.insert(key, checked[self.key_width :])

    def upsert(self, row: Sequence[Any]) -> None:
        """Insert or overwrite the row with the same key prefix."""
        checked = self._check_row(row)
        self._tree.insert(checked[: self.key_width], checked[self.key_width :])

    def delete(self, key: Sequence[Any]) -> bool:
        """Delete by full primary key; return ``False`` when absent."""
        return self._tree.delete(tuple(key))

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tree)

    def get(self, key: Sequence[Any]) -> tuple | None:
        """The unique row with this full primary key, or ``None``."""
        key = tuple(key)
        rest = self._tree.get(key, _MISSING)
        if rest is _MISSING:
            return None
        return key + rest

    def lookup(self, key_prefix: Sequence[Any]) -> list[tuple]:
        """All rows whose primary key starts with ``key_prefix``."""
        prefix = tuple(key_prefix)
        if len(prefix) > self.key_width:
            raise ValidationError(
                f"prefix wider than key ({len(prefix)} > {self.key_width})"
            )
        return [key + rest for key, rest in self._tree.prefix_scan(prefix)]

    def scan(self) -> Iterator[tuple]:
        """All rows in primary-key order."""
        for key, rest in self._tree.items():
            yield key + rest

    def where(self, predicate: Callable[[tuple], bool]) -> Iterator[tuple]:
        """Filter rows by an arbitrary predicate (full scan)."""
        return (row for row in self.scan() if predicate(row))

    def column_index(self, name: str) -> int:
        """Position of a column by name."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise ValidationError(f"{self.name}: no column named {name!r}")

    # -- persistence ---------------------------------------------------------------

    def save_json(self, path: str | Path) -> None:
        """Persist schema + rows as JSON."""
        payload = {
            "name": self.name,
            "columns": [[c.name, c.type] for c in self.columns],
            "key_width": self.key_width,
            "rows": [list(row) for row in self.scan()],
        }
        Path(path).write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    @classmethod
    def load_json(cls, path: str | Path) -> "Table":
        """Rebuild a table persisted by :meth:`save_json`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        try:
            table = cls(
                payload["name"],
                [Column(name, type_) for name, type_ in payload["columns"]],
                payload["key_width"],
            )
            for row in payload["rows"]:
                table.insert(row)
        except (KeyError, TypeError) as exc:
            raise StorageError(f"{path}: not a table JSON document") from exc
        return table

    # -- internals --------------------------------------------------------------------

    def _check_row(self, row: Sequence[Any]) -> tuple:
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValidationError(
                f"{self.name}: row has {len(row)} fields, "
                f"schema has {len(self.columns)}"
            )
        return tuple(
            column.check(value) for column, value in zip(self.columns, row)
        )

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.type}" for c in self.columns)
        return f"Table({self.name!r}, [{cols}], rows={len(self)})"


_MISSING = object()
