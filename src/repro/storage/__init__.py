"""From-scratch storage engine: B+trees, pages, record encoding.

The paper implements its k-path index on PostgreSQL's B+trees; this
package provides the equivalent ordered-dictionary substrate without an
external database:

* :mod:`repro.storage.memtree` — an in-memory B+tree with range and
  prefix scans (the default index backend);
* :mod:`repro.storage.records` — a memcomparable tuple codec, so byte
  order equals tuple order;
* :mod:`repro.storage.pager` — fixed-size page file with an LRU buffer
  pool;
* :mod:`repro.storage.diskbtree` — a page-based disk B+tree built on the
  pager (the faithful "real database" backend);
* :mod:`repro.storage.table` — a minimal typed relation used for index
  catalogs and persisted statistics.
"""

from repro.storage.memtree import BPlusTree
from repro.storage.records import decode_key, encode_key
from repro.storage.pager import Pager
from repro.storage.diskbtree import DiskBPlusTree
from repro.storage.table import Column, Table

__all__ = [
    "BPlusTree",
    "DiskBPlusTree",
    "Pager",
    "Table",
    "Column",
    "encode_key",
    "decode_key",
]
