"""A disk-backed B+tree over byte keys, built on the pager.

This is the "faithful" backend for the k-path index: the paper stores
``I_{G,k}`` in PostgreSQL B+trees; here the same ordered-dictionary
contract is provided by a from-scratch page-based tree.

Page layouts (big-endian):

* leaf — ``u8 type=1 | u16 count | u64 next_page`` then ``count``
  entries of ``u16 key_len | u16 value_len | key | value``;
* internal — ``u8 type=2 | u16 count`` then ``count+1`` ``u64`` child
  page numbers followed by ``count`` entries of ``u16 key_len | key``.

Keys are compared as raw bytes, so callers encode tuples with
:func:`repro.storage.records.encode_key` (memcomparable).  Deletion is
*lazy*: emptied nodes are unlinked and their pages freed, but no
borrowing/merging between siblings is performed — a common engineering
simplification (the index workload is build-once/read-many).
"""

from __future__ import annotations

import bisect
import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import KeyOrderError, StorageError
from repro.storage.pager import Pager

_LEAF = 1
_INTERNAL = 2
_LEAF_HEADER = struct.Struct(">BHQ")
_INTERNAL_HEADER = struct.Struct(">BH")
_SLOT_ROOT = 0
_SLOT_SIZE = 1
_NO_PAGE = 0


class _LeafNode:
    __slots__ = ("keys", "values", "next_page")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[bytes] = []
        self.next_page = _NO_PAGE

    def encoded_size(self) -> int:
        payload = sum(4 + len(k) + len(v) for k, v in zip(self.keys, self.values))
        return _LEAF_HEADER.size + payload

    def encode(self) -> bytes:
        parts = [_LEAF_HEADER.pack(_LEAF, len(self.keys), self.next_page)]
        for key, value in zip(self.keys, self.values):
            parts.append(struct.pack(">HH", len(key), len(value)))
            parts.append(key)
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def decode(cls, page: bytes) -> "_LeafNode":
        node = cls()
        kind, count, node.next_page = _LEAF_HEADER.unpack_from(page, 0)
        if kind != _LEAF:
            raise StorageError(f"expected leaf page, found type {kind}")
        offset = _LEAF_HEADER.size
        for _ in range(count):
            key_len, value_len = struct.unpack_from(">HH", page, offset)
            offset += 4
            node.keys.append(bytes(page[offset : offset + key_len]))
            offset += key_len
            node.values.append(bytes(page[offset : offset + value_len]))
            offset += value_len
        return node


class _InternalNode:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.children: list[int] = []

    def encoded_size(self) -> int:
        return (
            _INTERNAL_HEADER.size
            + 8 * len(self.children)
            + sum(2 + len(k) for k in self.keys)
        )

    def encode(self) -> bytes:
        parts = [_INTERNAL_HEADER.pack(_INTERNAL, len(self.keys))]
        parts.append(struct.pack(f">{len(self.children)}Q", *self.children))
        for key in self.keys:
            parts.append(struct.pack(">H", len(key)))
            parts.append(key)
        return b"".join(parts)

    @classmethod
    def decode(cls, page: bytes) -> "_InternalNode":
        node = cls()
        kind, count = _INTERNAL_HEADER.unpack_from(page, 0)
        if kind != _INTERNAL:
            raise StorageError(f"expected internal page, found type {kind}")
        offset = _INTERNAL_HEADER.size
        node.children = list(struct.unpack_from(f">{count + 1}Q", page, offset))
        offset += 8 * (count + 1)
        for _ in range(count):
            (key_len,) = struct.unpack_from(">H", page, offset)
            offset += 2
            node.keys.append(bytes(page[offset : offset + key_len]))
            offset += key_len
        return node


class DiskBPlusTree:
    """A persistent B+tree mapping byte keys to byte values."""

    def __init__(
        self,
        path: str | Path,
        page_size: int = 4096,
        cache_pages: int = 256,
    ):
        self._pager = Pager(path, page_size=page_size, cache_pages=cache_pages)
        self._max_entry = page_size - _LEAF_HEADER.size - 4
        root = self._pager.get_metadata(_SLOT_ROOT)
        if root == _NO_PAGE:
            root = self._pager.allocate_page()
            self._write_node(root, _LeafNode())
            self._pager.set_metadata(_SLOT_ROOT, root)
            self._pager.set_metadata(_SLOT_SIZE, 0)
        self._root = root

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        self._pager.flush()

    def close(self) -> None:
        self._pager.close()

    def __enter__(self) -> "DiskBPlusTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def pager_stats(self):
        """Buffer-pool counters (hits/misses/evictions)."""
        return self._pager.stats

    def __len__(self) -> int:
        return self._pager.get_metadata(_SLOT_SIZE)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    # -- node I/O ---------------------------------------------------------------

    def _read_node(self, page_no: int) -> "_LeafNode | _InternalNode":
        page = self._pager.read_page(page_no)
        kind = page[0]
        if kind == _LEAF:
            return _LeafNode.decode(page)
        if kind == _INTERNAL:
            return _InternalNode.decode(page)
        raise StorageError(f"page {page_no}: unknown node type {kind}")

    def _write_node(self, page_no: int, node: "_LeafNode | _InternalNode") -> None:
        self._pager.write_page(page_no, node.encode())

    def _set_size(self, delta: int) -> None:
        self._pager.set_metadata(_SLOT_SIZE, len(self) + delta)

    # -- point operations ----------------------------------------------------------

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        """The value stored under ``key``, or ``default``."""
        self._check_key(key)
        node = self._read_node(self._root)
        while isinstance(node, _InternalNode):
            index = bisect.bisect_right(node.keys, key)
            node = self._read_node(node.children[index])
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        return default

    def insert(self, key: bytes, value: bytes = b"") -> bool:
        """Insert or overwrite; return ``True`` if the key was new."""
        self._check_key(key, value)
        inserted, split = self._insert(self._root, key, value)
        if split is not None:
            separator, right_page = split
            new_root = _InternalNode()
            new_root.keys = [separator]
            new_root.children = [self._root, right_page]
            new_root_page = self._pager.allocate_page()
            self._write_node(new_root_page, new_root)
            self._root = new_root_page
            self._pager.set_metadata(_SLOT_ROOT, new_root_page)
        if inserted:
            self._set_size(+1)
        return inserted

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; return ``False`` when absent (lazy rebalancing)."""
        self._check_key(key)
        removed, emptied = self._delete(self._root, key)
        if removed:
            self._set_size(-1)
        if emptied:
            # Root leaf may legitimately be empty; keep it.
            pass
        root = self._read_node(self._root)
        if isinstance(root, _InternalNode) and len(root.children) == 1:
            old_root = self._root
            self._root = root.children[0]
            self._pager.set_metadata(_SLOT_ROOT, self._root)
            self._pager.free_page(old_root)
        return removed

    def _insert(
        self, page_no: int, key: bytes, value: bytes
    ) -> tuple[bool, tuple[bytes, int] | None]:
        node = self._read_node(page_no)
        if isinstance(node, _LeafNode):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                inserted = False
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                inserted = True
            if node.encoded_size() <= self._pager.page_size:
                self._write_node(page_no, node)
                return inserted, None
            return inserted, self._split_leaf(page_no, node)

        index = bisect.bisect_right(node.keys, key)
        inserted, split = self._insert(node.children[index], key, value)
        if split is None:
            return inserted, None
        separator, right_page = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right_page)
        if node.encoded_size() <= self._pager.page_size:
            self._write_node(page_no, node)
            return inserted, None
        return inserted, self._split_internal(page_no, node)

    def _split_leaf(self, page_no: int, node: _LeafNode) -> tuple[bytes, int]:
        middle = self._split_point(
            [4 + len(k) + len(v) for k, v in zip(node.keys, node.values)]
        )
        right = _LeafNode()
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        del node.keys[middle:]
        del node.values[middle:]
        right_page = self._pager.allocate_page()
        right.next_page = node.next_page
        node.next_page = right_page
        self._write_node(page_no, node)
        self._write_node(right_page, right)
        return right.keys[0], right_page

    def _split_internal(self, page_no: int, node: _InternalNode) -> tuple[bytes, int]:
        middle = max(1, len(node.keys) // 2)
        separator = node.keys[middle]
        right = _InternalNode()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        del node.keys[middle:]
        del node.children[middle + 1 :]
        right_page = self._pager.allocate_page()
        self._write_node(page_no, node)
        self._write_node(right_page, right)
        return separator, right_page

    @staticmethod
    def _split_point(entry_sizes: list[int]) -> int:
        """Index splitting the entries into two byte-balanced halves."""
        total = sum(entry_sizes)
        running = 0
        for index, size in enumerate(entry_sizes):
            running += size
            if running >= total // 2 and 0 < index + 1 < len(entry_sizes):
                return index + 1
        return max(1, len(entry_sizes) // 2)

    def _delete(self, page_no: int, key: bytes) -> tuple[bool, bool]:
        node = self._read_node(page_no)
        if isinstance(node, _LeafNode):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False, False
            del node.keys[index]
            del node.values[index]
            self._write_node(page_no, node)
            return True, not node.keys

        index = bisect.bisect_right(node.keys, key)
        child_page = node.children[index]
        removed, child_empty = self._delete(child_page, key)
        if removed and child_empty and len(node.children) > 1:
            child = self._read_node(child_page)
            if isinstance(child, _LeafNode):
                self._unlink_leaf(node, index, child)
            del node.children[index]
            del node.keys[index - 1 if index > 0 else 0]
            self._pager.free_page(child_page)
            self._write_node(page_no, node)
            return True, not node.children
        return removed, False

    def _unlink_leaf(self, parent: _InternalNode, index: int, child: _LeafNode) -> None:
        """Repair the leaf chain around an emptied leaf being removed."""
        if index == 0:
            return  # predecessor lives in another subtree; handled lazily
        left_page = parent.children[index - 1]
        left = self._read_node(left_page)
        if isinstance(left, _LeafNode):
            left.next_page = child.next_page
            self._write_node(left_page, left)

    # -- scans -----------------------------------------------------------------------

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All pairs in byte-key order."""
        yield from self.range_scan()

    def range_scan(
        self, low: bytes | None = None, high: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Pairs with ``low <= key < high`` (half-open, bounds optional)."""
        node = self._read_node(self._root)
        while isinstance(node, _InternalNode):
            index = 0 if low is None else bisect.bisect_right(node.keys, low)
            node = self._read_node(node.children[index])
        index = 0 if low is None else bisect.bisect_left(node.keys, low)
        while True:
            while index < len(node.keys):
                key = node.keys[index]
                if high is not None and key >= high:
                    return
                yield key, node.values[index]
                index += 1
            if node.next_page == _NO_PAGE:
                return
            node = self._read_node(node.next_page)
            if not isinstance(node, _LeafNode):
                raise StorageError("leaf chain points at a non-leaf page")
            index = 0

    def prefix_scan(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """All pairs whose key starts with ``prefix`` bytes."""
        for key, value in self.range_scan(low=prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    # -- bulk load ---------------------------------------------------------------------

    def bulk_load(self, items: Iterable[tuple[bytes, bytes]], fill: float = 0.8) -> None:
        """Replace the tree contents from key-sorted ``(key, value)`` pairs.

        Packs leaves to ``fill`` of a page and stacks internal levels
        bottom-up.  Only valid on an empty tree.
        """
        if len(self) != 0:
            raise StorageError("bulk_load requires an empty tree")
        if not 0.1 <= fill <= 1.0:
            raise StorageError(f"fill factor out of range: {fill}")
        budget = int(self._pager.page_size * fill)

        leaf_pages: list[int] = []
        separators: list[bytes] = []
        current = _LeafNode()
        current_page = self._root
        previous: bytes | None = None
        count = 0
        for key, value in items:
            self._check_key(key, value)
            if previous is not None and key <= previous:
                raise KeyOrderError(
                    f"bulk_load keys must be strictly ascending at {key!r}"
                )
            previous = key
            entry = 4 + len(key) + len(value)
            if current.keys and current.encoded_size() + entry > budget:
                next_page = self._pager.allocate_page()
                current.next_page = next_page
                self._write_node(current_page, current)
                leaf_pages.append(current_page)
                separators.append(current.keys[0])
                current = _LeafNode()
                current_page = next_page
            current.keys.append(key)
            current.values.append(value)
            count += 1
        self._write_node(current_page, current)
        leaf_pages.append(current_page)
        separators.append(current.keys[0] if current.keys else b"")

        level = leaf_pages
        level_seps = separators
        while len(level) > 1:
            parents: list[int] = []
            parent_seps: list[bytes] = []
            group_children: list[int] = []
            group_keys: list[bytes] = []
            group_first: bytes | None = None

            def flush_group() -> None:
                node = _InternalNode()
                node.children = list(group_children)
                node.keys = list(group_keys)
                page = self._pager.allocate_page()
                self._write_node(page, node)
                parents.append(page)
                parent_seps.append(group_first if group_first is not None else b"")

            for child, sep in zip(level, level_seps):
                projected = (
                    _INTERNAL_HEADER.size
                    + 8 * (len(group_children) + 1)
                    + sum(2 + len(k) for k in group_keys)
                    + 2
                    + len(sep)
                )
                if group_children and projected > budget:
                    flush_group()
                    group_children = []
                    group_keys = []
                    group_first = None
                if not group_children:
                    group_first = sep
                else:
                    group_keys.append(sep)
                group_children.append(child)
            flush_group()
            level = parents
            level_seps = parent_seps

        self._root = level[0]
        self._pager.set_metadata(_SLOT_ROOT, self._root)
        self._pager.set_metadata(_SLOT_SIZE, count)

    # -- validation -------------------------------------------------------------------

    def _check_key(self, key: bytes, value: bytes = b"") -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise StorageError(f"keys must be bytes, got {type(key).__name__}")
        if 4 + len(key) + len(value) > self._max_entry:
            raise StorageError(
                f"entry of {len(key) + len(value)} bytes exceeds page capacity"
            )
