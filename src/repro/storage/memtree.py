"""An in-memory B+tree over tuple keys.

This is the default ordered-dictionary backend of the k-path index
(Section 3.1 of the paper: "an ordered dictionary, which can be
implemented, for example, as a B+tree").  Keys are tuples compared
lexicographically; values are arbitrary payloads (the path index stores
``None`` and uses pure key semantics).

Supported operations: point insert/get/delete, ordered iteration,
half-open range scans, *prefix* scans (all keys whose leading components
equal a given tuple — exactly the ``I_{G,k}(p)``, ``I_{G,k}(p, a)`` and
``I_{G,k}(p, a, b)`` lookups of Example 3.1), and sorted bulk loading.

Deletion rebalances (borrow-then-merge), so the tree stays within its
occupancy invariants under any workload; the invariants are checked by
:meth:`BPlusTree.check_invariants`, which the property tests call.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Any, Iterable, Iterator

from repro.errors import KeyOrderError, StorageError

Key = tuple
_SENTINEL = object()


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[Key] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[-1] holds the rest.
        self.keys: list[Key] = []
        self.children: list[Any] = []


class BPlusTree:
    """An in-memory B+tree mapping tuple keys to values.

    Parameters
    ----------
    order:
        Maximum number of keys per node (minimum 4).  Leaves and
        internal nodes use the same fanout.
    """

    def __init__(self, order: int = 64):
        if order < 4:
            raise StorageError(f"B+tree order must be >= 4, got {order}")
        self._order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0

    # -- basic properties -------------------------------------------------

    @property
    def order(self) -> int:
        return self._order

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Key) -> bool:
        return self.get(key, _SENTINEL) is not _SENTINEL

    # -- point operations --------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def insert(self, key: Key, value: Any = None) -> bool:
        """Insert ``key``; return ``False`` (and overwrite) if present."""
        if not isinstance(key, tuple):
            raise StorageError(f"keys must be tuples, got {type(key).__name__}")
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        inserted = self._inserted_flag
        if inserted:
            self._size += 1
        return inserted

    def delete(self, key: Key) -> bool:
        """Remove ``key``; return ``False`` if it was absent."""
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
            root = self._root
            if isinstance(root, _Internal) and len(root.children) == 1:
                self._root = root.children[0]
        return removed

    # -- scans ---------------------------------------------------------------

    def items(self) -> Iterator[tuple[Key, Any]]:
        """All ``(key, value)`` pairs in key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def keys(self) -> Iterator[Key]:
        """All keys in order."""
        for key, _ in self.items():
            yield key

    def range_scan(
        self, low: Key | None = None, high: Key | None = None
    ) -> Iterator[tuple[Key, Any]]:
        """Pairs with ``low <= key < high`` (either bound may be None)."""
        if low is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            keys = leaf.keys
            while index < len(keys):
                key = keys[index]
                if high is not None and key >= high:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def prefix_scan(self, prefix: Key) -> Iterator[tuple[Key, Any]]:
        """All pairs whose key starts with the components of ``prefix``.

        Relies on tuple comparison: a proper prefix sorts before all of
        its extensions, so the matching keys form one contiguous run.
        """
        if not isinstance(prefix, tuple):
            raise StorageError("prefix must be a tuple")
        width = len(prefix)
        for key, value in self.range_scan(low=prefix):
            if key[:width] != prefix:
                return
            yield key, value

    def count_prefix(self, prefix: Key) -> int:
        """Number of keys matching ``prefix`` (linear in the answer)."""
        return sum(1 for _ in self.prefix_scan(prefix))

    def prefix_scan_columns(
        self, prefix: Key, first: int = 1, second: int = 2
    ) -> tuple[array, array]:
        """Two key components of every prefix match, as ``array('q')`` columns.

        The columnar fast path behind ``PathIndex.scan``: walks the leaf
        chain and bulk-extends ``key[first]``/``key[second]`` into twin
        int64 arrays one leaf at a time, so no per-match tuple or
        generator frame is created.  Matches arrive in key order, i.e.
        the columns come back sorted lexicographically.  The prefix's
        components must be integers (they are bisected against with an
        exclusive upper bound of ``prefix[-1] + 1``).
        """
        if not isinstance(prefix, tuple) or not prefix:
            raise StorageError("prefix must be a non-empty tuple")
        upper = prefix[:-1] + (prefix[-1] + 1,)
        column_a = array("q")
        column_b = array("q")
        leaf: _Leaf | None = self._find_leaf(prefix)
        index = bisect.bisect_left(leaf.keys, prefix)
        while leaf is not None:
            keys = leaf.keys
            end = bisect.bisect_left(keys, upper, index)
            run = keys[index:end]
            column_a.extend([key[first] for key in run])
            column_b.extend([key[second] for key in run])
            if end < len(keys):
                break
            leaf = leaf.next
            index = 0
        return column_a, column_b

    # -- bulk load -------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, items: Iterable[tuple[Key, Any]], order: int = 64
    ) -> "BPlusTree":
        """Build a tree from key-sorted ``(key, value)`` pairs.

        Bulk loading packs leaves sequentially and builds internal
        levels bottom-up, which is how the path-index builder
        materializes ``I_{G,k}`` (it produces entries in sorted order).
        Raises :class:`KeyOrderError` on out-of-order or duplicate keys.
        """
        tree = cls(order=order)
        leaf_capacity = order
        leaves: list[_Leaf] = []
        current = _Leaf()
        previous_key: Key | None = None
        count = 0
        for key, value in items:
            if previous_key is not None and key <= previous_key:
                raise KeyOrderError(
                    f"bulk_load keys must be strictly ascending; "
                    f"{key!r} follows {previous_key!r}"
                )
            previous_key = key
            if len(current.keys) == leaf_capacity:
                leaves.append(current)
                fresh = _Leaf()
                current.next = fresh
                current = fresh
            current.keys.append(key)
            current.values.append(value)
            count += 1
        leaves.append(current)
        return cls._assemble(tree, leaves, count, order)

    @classmethod
    def bulk_load_runs(
        cls, runs: Iterable[list[Key]], order: int = 64
    ) -> "BPlusTree":
        """Build a tree from pre-sorted key *runs* (all values ``None``).

        The columnar twin of :meth:`bulk_load`: each run is a list of
        strictly ascending keys (e.g. one path's ``(path_id, src, tgt)``
        triples from a ``BY_SRC``-sorted relation), and runs arrive in
        ascending order of their keys.  Leaves are packed by list
        *slicing* instead of a per-entry append loop, so loading is
        dominated by C-speed list copies — the fast path behind the
        sharded index build, where per-shard relations come out of the
        columnar kernels already sorted and duplicate-free.

        Ordering *within* a run is trusted (the columnar kernels
        guarantee it, exactly as :class:`repro.relation.Relation` order
        flags are trusted); ordering *across* runs is still validated,
        so interleaving two paths' runs fails loudly.
        """
        tree = cls(order=order)
        leaves: list[_Leaf] = []
        current = _Leaf()
        previous_last: Key | None = None
        count = 0
        for run in runs:
            if not run:
                continue
            if previous_last is not None and run[0] <= previous_last:
                raise KeyOrderError(
                    f"bulk_load_runs runs must be strictly ascending; "
                    f"run starting {run[0]!r} follows {previous_last!r}"
                )
            previous_last = run[-1]
            count += len(run)
            position = 0
            remaining = len(run)
            while remaining:
                space = order - len(current.keys)
                if space == 0:
                    leaves.append(current)
                    fresh = _Leaf()
                    current.next = fresh
                    current = fresh
                    space = order
                take = space if space < remaining else remaining
                current.keys.extend(run[position : position + take])
                current.values.extend([None] * take)
                position += take
                remaining -= take
        leaves.append(current)
        return cls._assemble(tree, leaves, count, order)

    @classmethod
    def _assemble(
        cls, tree: "BPlusTree", leaves: list["_Leaf"], count: int, order: int
    ) -> "BPlusTree":
        """Finish a bulk load: rebalance the tail leaf, build internal levels."""
        leaf_capacity = order
        # Avoid an under-full final leaf (unless it is the only one).
        if len(leaves) > 1 and len(leaves[-1].keys) < leaf_capacity // 2:
            donor, last = leaves[-2], leaves[-1]
            total = len(donor.keys) + len(last.keys)
            keep = total // 2
            last.keys[:0] = donor.keys[keep:]
            last.values[:0] = donor.values[keep:]
            del donor.keys[keep:]
            del donor.values[keep:]

        if count == 0:
            return tree

        level: list[Any] = list(leaves)
        separators = [leaf.keys[0] for leaf in leaves]
        fanout = order + 1
        while len(level) > 1:
            # Even-sized groups keep every internal node at or above the
            # minimum occupancy (see the occupancy analysis in the tests).
            group_count = -(-len(level) // fanout)
            base, extra = divmod(len(level), group_count)
            next_level: list[Any] = []
            next_separators: list[Key] = []
            start = 0
            for group_index in range(group_count):
                size = base + (1 if group_index < extra else 0)
                group = level[start : start + size]
                node = _Internal()
                node.children = group
                node.keys = separators[start + 1 : start + size]
                next_level.append(node)
                next_separators.append(separators[start])
                start += size
            level = next_level
            separators = next_separators
        tree._root = level[0]
        tree._size = count
        return tree

    # -- invariant checking ------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`StorageError` if any B+tree invariant is broken.

        Checked: key ordering within and across nodes, occupancy bounds,
        uniform leaf depth, leaf-chain completeness, and size accounting.
        """
        leaves: list[_Leaf] = []
        self._check_node(self._root, None, None, is_root=True, depth=0, leaves=leaves)
        depths = {depth for _, depth in leaves_with_depth(self._root)}
        if len(depths) > 1:
            raise StorageError(f"leaves at multiple depths: {sorted(depths)}")
        chained = []
        leaf = self._leftmost_leaf()
        while leaf is not None:
            chained.append(leaf)
            leaf = leaf.next
        if [id(leaf) for leaf in chained] != [id(leaf) for leaf in leaves]:
            raise StorageError("leaf chain does not match tree order")
        total = sum(len(leaf.keys) for leaf in leaves)
        if total != self._size:
            raise StorageError(f"size mismatch: counted {total}, recorded {self._size}")
        flat = [key for leaf in leaves for key in leaf.keys]
        if flat != sorted(set(flat)):
            raise StorageError("keys are not strictly ascending across leaves")

    # -- internals ------------------------------------------------------------------

    def _find_leaf(self, key: Key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def _insert(
        self, node: _Leaf | _Internal, key: Key, value: Any
    ) -> tuple[Key, Any] | None:
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                self._inserted_flag = False
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._inserted_flag = True
            if len(node.keys) <= self._order:
                return None
            return self._split_leaf(node)

        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Leaf) -> tuple[Key, _Leaf]:
        middle = len(node.keys) // 2
        right = _Leaf()
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        del node.keys[middle:]
        del node.values[middle:]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Key, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        del node.keys[middle:]
        del node.children[middle + 1 :]
        return separator, right

    def _delete(self, node: _Leaf | _Internal, key: Key) -> bool:
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index]
            del node.values[index]
            return True

        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        removed = self._delete(child, key)
        if removed and self._is_underfull(child):
            self._rebalance(node, index)
        return removed

    def _min_keys(self) -> int:
        return self._order // 2

    def _is_underfull(self, node: _Leaf | _Internal) -> bool:
        if isinstance(node, _Leaf):
            return len(node.keys) < self._min_keys()
        return len(node.children) < self._min_keys() + 1

    def _rebalance(self, parent: _Internal, index: int) -> None:
        child = parent.children[index]
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None

        if isinstance(child, _Leaf):
            if left is not None and len(left.keys) > self._min_keys():
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[index - 1] = child.keys[0]
            elif right is not None and len(right.keys) > self._min_keys():
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[index] = right.keys[0]
            elif left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                del parent.children[index]
                del parent.keys[index - 1]
            else:
                assert right is not None
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                del parent.children[index + 1]
                del parent.keys[index]
            return

        if left is not None and len(left.children) > self._min_keys() + 1:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        elif right is not None and len(right.children) > self._min_keys() + 1:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        elif left is not None:
            left.keys.append(parent.keys[index - 1])
            left.keys.extend(child.keys)
            left.children.extend(child.children)
            del parent.children[index]
            del parent.keys[index - 1]
        else:
            assert right is not None
            child.keys.append(parent.keys[index])
            child.keys.extend(right.keys)
            child.children.extend(right.children)
            del parent.children[index + 1]
            del parent.keys[index]

    def _check_node(
        self,
        node: _Leaf | _Internal,
        low: Key | None,
        high: Key | None,
        is_root: bool,
        depth: int,
        leaves: list[_Leaf],
    ) -> None:
        if isinstance(node, _Leaf):
            for key in node.keys:
                if low is not None and key < low:
                    raise StorageError(f"leaf key {key!r} below bound {low!r}")
                if high is not None and key >= high:
                    raise StorageError(f"leaf key {key!r} above bound {high!r}")
            if node.keys != sorted(node.keys):
                raise StorageError("leaf keys out of order")
            if not is_root and len(node.keys) < self._min_keys():
                raise StorageError("underfull leaf")
            if len(node.keys) > self._order:
                raise StorageError("overfull leaf")
            leaves.append(node)
            return
        if node.keys != sorted(node.keys):
            raise StorageError("internal keys out of order")
        if len(node.children) != len(node.keys) + 1:
            raise StorageError("internal child/key count mismatch")
        if not is_root and len(node.children) < self._min_keys() + 1:
            raise StorageError("underfull internal node")
        if len(node.keys) > self._order:
            raise StorageError("overfull internal node")
        bounds = [low, *node.keys, high]
        for position, child in enumerate(node.children):
            self._check_node(
                child,
                bounds[position],
                bounds[position + 1],
                is_root=False,
                depth=depth + 1,
                leaves=leaves,
            )


def leaves_with_depth(root: _Leaf | _Internal) -> Iterator[tuple[_Leaf, int]]:
    """Yield every leaf with its depth (used by invariant checks)."""
    stack: list[tuple[Any, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, _Leaf):
            yield node, depth
        else:
            for child in reversed(node.children):
                stack.append((child, depth + 1))
