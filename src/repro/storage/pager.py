"""A fixed-size page file with an LRU buffer pool.

This is the bottom layer of the disk-backed index: a file divided into
``page_size``-byte pages, cached through a bounded write-back buffer
pool.  Page 0 is the header: a magic string, the geometry, and eight
named 64-bit metadata slots that higher layers (the disk B+tree) use to
persist their root pointers and counters.

Freed pages are chained into a free list threaded through the pages
themselves (first 8 bytes of a free page point at the next free page),
so files do not grow monotonically under churn.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError, TransientStorageError
from repro.faults import fire

MAGIC = b"RPQPAGES"
HEADER_FORMAT = ">8sIIQ"  # magic, page_size, page_count, freelist head
HEADER_SIZE = struct.calcsize(HEADER_FORMAT)
METADATA_SLOTS = 8
_NO_PAGE = 0  # page 0 is the header, so 0 doubles as "null pointer"


@dataclass
class PagerStats:
    """Buffer-pool counters, for the storage benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0
    allocations: int = field(default=0)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Pager:
    """Page-granular file access through an LRU write-back cache."""

    def __init__(
        self,
        path: str | Path,
        page_size: int = 4096,
        cache_pages: int = 256,
    ):
        if page_size < 128:
            raise StorageError(f"page_size must be >= 128, got {page_size}")
        if cache_pages < 4:
            raise StorageError(f"cache_pages must be >= 4, got {cache_pages}")
        self._path = Path(path)
        self._cache_pages = cache_pages
        self._cache: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        # One shared file handle + one LRU serve every reader, so page
        # access must be serialized: two concurrent readers would
        # interleave seek/read and get each other's pages, and LRU
        # reordering/eviction mutates the OrderedDict.  Reentrant
        # because allocate_page reads the freelist head through
        # read_page.  Readers only hold it per page fetch — returned
        # pages are never mutated in place (write_page installs fresh
        # buffers), so a caller can keep using a page after release.
        self._lock = threading.RLock()
        self.stats = PagerStats()
        exists = self._path.exists() and self._path.stat().st_size > 0
        self._file = open(self._path, "r+b" if exists else "w+b")
        if exists:
            self._load_header(page_size)
        else:
            self._page_size = page_size
            self._page_count = 1
            self._freelist_head = _NO_PAGE
            self._metadata = [0] * METADATA_SLOTS
            self._write_header()
        self._closed = False

    # -- header --------------------------------------------------------------

    def _load_header(self, expected_page_size: int) -> None:
        self._file.seek(0)
        raw = self._file.read(HEADER_SIZE + 8 * METADATA_SLOTS)
        if len(raw) < HEADER_SIZE:
            raise StorageError(f"{self._path}: truncated header")
        magic, page_size, page_count, freelist = struct.unpack_from(
            HEADER_FORMAT, raw
        )
        if magic != MAGIC:
            raise StorageError(f"{self._path}: bad magic {magic!r}")
        if page_size != expected_page_size:
            raise StorageError(
                f"{self._path}: file has page_size={page_size}, "
                f"caller expected {expected_page_size}"
            )
        self._page_size = page_size
        self._page_count = page_count
        self._freelist_head = freelist
        self._metadata = list(
            struct.unpack_from(f">{METADATA_SLOTS}Q", raw, HEADER_SIZE)
        )

    def _write_header(self) -> None:
        header = struct.pack(
            HEADER_FORMAT, MAGIC, self._page_size, self._page_count, self._freelist_head
        ) + struct.pack(f">{METADATA_SLOTS}Q", *self._metadata)
        self._file.seek(0)
        self._file.write(header.ljust(min(self._page_size, 4096), b"\x00"))

    # -- metadata slots -----------------------------------------------------------

    def get_metadata(self, slot: int) -> int:
        """Read one of the 64-bit header metadata slots."""
        self._check_slot(slot)
        return self._metadata[slot]

    def set_metadata(self, slot: int, value: int) -> None:
        """Write one of the 64-bit header metadata slots (flushed eagerly)."""
        self._check_slot(slot)
        if not 0 <= value < (1 << 64):
            raise StorageError(f"metadata value out of range: {value}")
        with self._lock:
            self._metadata[slot] = value
            self._write_header()

    @staticmethod
    def _check_slot(slot: int) -> None:
        if not 0 <= slot < METADATA_SLOTS:
            raise StorageError(f"metadata slot out of range: {slot}")

    # -- page access -------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def page_count(self) -> int:
        return self._page_count

    def allocate_page(self) -> int:
        """Return a fresh zeroed page number (reusing freed pages)."""
        self._check_open()
        with self._lock:
            self.stats.allocations += 1
            if self._freelist_head != _NO_PAGE:
                page_no = self._freelist_head
                head = self.read_page(page_no)
                self._freelist_head = struct.unpack_from(">Q", head, 0)[0]
                self._write_header()
            else:
                page_no = self._page_count
                self._page_count += 1
                self._write_header()
            blank = bytearray(self._page_size)
            self._cache_put(page_no, blank, dirty=True)
            return page_no

    def free_page(self, page_no: int) -> None:
        """Return a page to the free list."""
        self._check_page(page_no)
        with self._lock:
            page = bytearray(self._page_size)
            struct.pack_into(">Q", page, 0, self._freelist_head)
            self._cache_put(page_no, page, dirty=True)
            self._freelist_head = page_no
            self._write_header()

    def read_page(self, page_no: int) -> bytearray:
        """Fetch a page (from cache or disk).  Mutations require write_page."""
        self._check_page(page_no)
        with self._lock:
            cached = self._cache.get(page_no)
            if cached is not None:
                self._cache.move_to_end(page_no)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
            try:
                self._file.seek(page_no * self._page_size)
                raw = self._file.read(self._page_size)
            except OSError as error:
                # An I/O hiccup on a read is retryable: the page on disk
                # is intact, only this fetch failed.
                raise TransientStorageError(
                    f"{self._path}: read of page {page_no} failed: {error}"
                ) from error
            # Fault-injection seam: may raise a transient error or hand
            # back deliberately corrupted bytes (which the B+tree node
            # decoder then rejects as a typed StorageError).
            raw = fire("storage.read_page", raw, page=page_no)
            page = bytearray(raw.ljust(self._page_size, b"\x00"))
            self._cache_put(page_no, page, dirty=False)
            return page

    def write_page(self, page_no: int, data: bytes | bytearray) -> None:
        """Replace a page's contents (write-back through the cache)."""
        self._check_page(page_no)
        if len(data) > self._page_size:
            raise StorageError(
                f"page overflow: {len(data)} bytes into {self._page_size}-byte page"
            )
        with self._lock:
            page = bytearray(self._page_size)
            page[: len(data)] = data
            self._cache_put(page_no, page, dirty=True)
            self.stats.writes += 1

    def flush(self) -> None:
        """Write all dirty pages and the header to disk."""
        self._check_open()
        with self._lock:
            try:
                for page_no in sorted(self._dirty):
                    self._file.seek(page_no * self._page_size)
                    self._file.write(self._cache[page_no])
                self._dirty.clear()
                self._write_header()
                self._file.flush()
            except OSError as error:
                # Dirty pages stay cached and marked dirty, so a retry
                # of flush() rewrites everything that did not land.
                raise TransientStorageError(
                    f"{self._path}: flush failed: {error}"
                ) from error

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._file.close()
            self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- cache internals ------------------------------------------------------------

    def _cache_put(self, page_no: int, page: bytearray, dirty: bool) -> None:
        self._cache[page_no] = page
        self._cache.move_to_end(page_no)
        if dirty:
            self._dirty.add(page_no)
        while len(self._cache) > self._cache_pages:
            victim_no, victim = self._cache.popitem(last=False)
            self.stats.evictions += 1
            if victim_no in self._dirty:
                self._file.seek(victim_no * self._page_size)
                self._file.write(victim)
                self._dirty.discard(victim_no)

    def _check_page(self, page_no: int) -> None:
        self._check_open()
        if not 1 <= page_no < self._page_count:
            raise StorageError(
                f"page {page_no} out of range (1..{self._page_count - 1})"
            )

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("pager is closed")
