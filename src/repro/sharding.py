"""Hash-partitioned path indexes: the sharded graph engine.

The k-path index is the dominant offline cost of the paper's approach,
and both its build and its scans parallelize naturally once the data is
partitioned.  This module partitions by *path start*: a multiplicative
hash assigns every vertex to one of N shards (:func:`shard_of`), and
shard ``s`` owns exactly the index entries ``(p, a, b)`` whose start
vertex ``a`` it owns.  Equivalently, each forward edge lives in the
shard of its source vertex and each inverse traversal in the shard of
its target — "hash-partition edges by source vertex", applied per
traversal direction so that every label path's relation is split by
its first column.

Three properties fall out of that rule and carry the whole design:

* **disjoint exactness** — for every label path ``p``, the per-shard
  relations partition ``p(G)``; their union (one packed-key merge,
  :func:`repro.relation.union`) is exactly the unsharded scan.  Nothing
  is approximated, so ``shards=N`` answers are identical to
  ``shards=1``.
* **independent builds** — a shard's relations are computed by
  restricting the *first* step of the trie walk to owned vertices and
  composing against full-graph step relations
  (:func:`repro.indexes.builder.path_relations_columnar`), so shards
  build with no communication and fan out over a process pool.
* **locality** — single-source lookups (``I(p, a)`` scans, membership
  probes) route to the one shard owning ``a``; a graph mutation
  invalidates only the shards within undirected distance ``k - 1`` of
  the touched edge (:meth:`ShardedGraph.shards_touching`), so
  :meth:`repro.api.GraphDatabase.add_edge` rebuilds a neighborhood,
  not the world.

What does *not* shard is Kleene recursion: a ``Star`` path may hop
between shards arbitrarily often, so cross-shard closure cannot be
answered shard-locally.  Recursive subplans are therefore routed
through a single global CSR closure over the merged base relation
(:func:`repro.csr.partitioned_closure`) — exactness over locality.

:class:`ShardedGraph` presents the full :class:`~repro.indexes.pathindex.PathIndex`
interface (scan / scan_swapped / scan_from / contains / counts), so the
executor, navigation and statistics layers run unmodified against it;
the scatter-gather plan executor
(:func:`repro.engine.operators.execute_scattered`) additionally uses the
per-shard scan methods to keep join fan-in partitioned.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from pathlib import Path as FilePath
from pickle import PicklingError
from typing import Iterable, Iterator, Sequence

from repro import relation as rel
from repro.errors import ShardUnavailableError, TransientError, ValidationError
from repro.faults import fire, retry_call
from repro.graph.graph import Graph, LabelPath
from repro.graph.stats import count_paths_k
from repro.indexes.builder import path_relations_columnar
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import (
    ExactStatistics,
    ShardStatistics,
    merge_shard_counts,
)
from repro.relation import Order, Relation

#: Fibonacci-style multiplicative mixer: consecutive dense ids spread
#: uniformly over shards while staying a pure function of the id.
SHARD_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1
_SHARD_SHIFT = 17

#: Below this many edges a default-configured build stays serial: the
#: composition work is too small to amortize process startup and graph
#: pickling.  An explicit ``workers=`` always wins.
PARALLEL_MIN_EDGES = 512

#: Default re-planning trigger: a shard's estimate for some length-k
#: window of a disjunct must diverge from its uniform share of the
#: global estimate by more than this factor (either direction) before
#: the join spine is re-costed against the shard's own statistics.
#: Loose by design — per-shard and global histograms bucket
#: differently, so small disagreements are synopsis noise, not skew.
REPLAN_DIVERGENCE = 4.0

#: Bucket count of the per-shard equi-depth histograms.  A shard holds
#: ~1/N of every relation, so the global default of 64 stays plenty.
SHARD_STATISTICS_BUCKETS = 64

#: Size bound on the per-index scatter-decision / re-plan cache:
#: decisions and re-planned spines are tiny, but a template-heavy
#: workload of distinct queries would otherwise pin plan trees forever.
DECISION_CACHE_MAX = 4096


class BoundedCache:
    """A size-capped mapping with FIFO eviction.

    Holds the sharded engine's scatter-planning decisions and
    re-planned disjunct spines.  Both are pure functions of state that
    only changes on rebuild, so eviction merely costs a re-derivation —
    insertion order is as good an eviction policy as any, and it keeps
    every operation O(1).  Writes can race between reader threads
    (queries are readers); each mutation is guarded by a lock so the
    size invariant holds under concurrency, and racing writers of the
    same key store equal values.
    """

    __slots__ = ("_data", "_maxsize", "_lock")

    def __init__(self, maxsize: int = DECISION_CACHE_MAX) -> None:
        if maxsize < 1:
            raise ValidationError(f"cache maxsize must be >= 1, got {maxsize}")
        self._data: OrderedDict = OrderedDict()
        self._maxsize = maxsize
        self._lock = threading.Lock()

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def get(self, key, default=None):
        return self._data.get(key, default)

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


def shard_of(node_id: int, shard_count: int, seed: int = 0) -> int:
    """The shard owning ``node_id`` (and every path starting there).

    ``seed`` perturbs the hash before mixing, giving a whole family of
    placements; ``rebalance()`` walks candidate seeds when the default
    placement goes skewed under a hostile mutation stream.  ``seed=0``
    is bit-for-bit the historical map.
    """
    return ((((node_id + seed) * SHARD_MIX) & _MASK64) >> _SHARD_SHIFT) % shard_count


class ShardMembership:
    """Set-like view of one shard's vertices (no materialized set).

    Passed as the ``sources`` filter of the builder; ``mask`` is the
    vectorized membership test
    (:func:`repro.indexes.builder._restrict_sources` uses it to filter
    a whole column in one numpy pass).
    """

    __slots__ = ("shard", "shard_count", "seed")

    def __init__(self, shard: int, shard_count: int, seed: int = 0) -> None:
        self.shard = shard
        self.shard_count = shard_count
        self.seed = seed

    def __contains__(self, node_id: int) -> bool:
        return shard_of(node_id, self.shard_count, self.seed) == self.shard

    def mask(self, ids):
        """Boolean numpy mask of which ``ids`` belong to this shard."""
        numpy = rel._np
        mixed = (ids.astype(numpy.uint64) + numpy.uint64(self.seed)) * numpy.uint64(
            SHARD_MIX
        )
        return (mixed >> numpy.uint64(_SHARD_SHIFT)) % numpy.uint64(
            self.shard_count
        ) == numpy.uint64(self.shard)


#: Payload a build worker returns for one shard: the shard's relations
#: in trie order, columns kept as picklable ``array('q')`` pairs.
ShardPayload = list[tuple[str, "object", "object"]]


def _shard_payload(
    graph: Graph,
    k: int,
    shard_count: int,
    shard: int,
    prune_empty: bool,
    seed: int = 0,
) -> ShardPayload:
    """Compute one shard's path relations (runs in a pool worker)."""
    membership = ShardMembership(shard, shard_count, seed)
    return [
        (path.encode(), relation.src, relation.tgt)
        for path, relation in path_relations_columnar(
            graph, k, prune_empty=prune_empty, sources=membership
        )
    ]


class ShardedGraph:
    """N hash-partitioned :class:`PathIndex` shards over one graph.

    Build with :meth:`build`; query through the PathIndex-compatible
    facade (global scatter-gather) or the ``shard_*`` methods (one
    shard's slice).  ``shards=1`` is legal but pointless — the API layer
    keeps the plain unsharded engine for that case.
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        shards: Sequence[PathIndex],
        backend: str,
        index_path: str | FilePath | None,
        build_workers: int,
        prune_empty: bool = True,
        shard_seed: int = 0,
    ) -> None:
        self.graph = graph
        self.k = k
        self._shards = list(shards)
        self._backend = backend
        self._index_path = index_path
        self._build_workers = build_workers
        self._prune_empty = prune_empty
        #: Hash seed of the vertex-to-shard map.  Fixed per instance:
        #: re-seeding (rebalancing) means a full rebuild into a new
        #: instance, never an in-place remap.
        self.shard_seed = shard_seed
        #: Thread fan-out of scatter-gather plan execution (1 = serial).
        self.query_workers = 1
        #: Skip scatter slices whose leftmost-leaf slice is *provably*
        #: empty (per-shard exact count 0).  Sound by construction —
        #: composition and union with an empty leftmost input restricted
        #: to the shard contribute nothing — and surfaced per query on
        #: :class:`repro.engine.executor.ExecutionReport`.
        self.scatter_pruning = True
        #: Divergence factor that triggers per-shard re-planning of a
        #: disjunct's join spine (``None`` disables re-planning).
        self.replan_divergence: float | None = REPLAN_DIVERGENCE
        #: The step vocabulary the shards were enumerated over.  A
        #: mutation that changes it invalidates every shard's path set
        #: at once — the API layer then forces a full rebuild.
        self.alphabet = graph.labels()
        # Per-shard owned-vertex lists, computed in one pass over the
        # node ids and cached against the graph version (the id->shard
        # map is pure, but the id space grows with the graph).
        self._owned_version = -1
        self._owned_lists: list[list[int]] = []
        # Statistics caches.  The merged catalog and |paths_k(G)| are
        # shared by every planner costing pass, so both are computed
        # once and invalidated only when shard contents can change
        # (rebuild_shards; a full rebuild constructs a new instance).
        # Per-shard ShardStatistics are built lazily per shard — the
        # catalogs they read already exist, so construction is one
        # pass over each shard's counts, exactly the "one extra pass"
        # the build pays for skew-aware planning.
        self._merged_counts: dict[str, int] | None = None
        self._total_paths_k: int | None = None
        self._shard_statistics: list[ShardStatistics | None] = [
            None for _ in self._shards
        ]
        #: Scatter decisions and re-planned disjunct spines, keyed on
        #: ``(shard, tag, plan)`` and
        #: ``(shard, encoded path, strategy, statistics flavor)``
        #: respectively.  A shard's statistics are immutable between
        #: rebuilds, so the decisions are too — caching them keeps
        #: skew-aware planning a per-*rebuild* cost instead of a
        #: per-execution one.  Bounded (FIFO eviction) so a
        #: template-heavy workload of distinct queries cannot grow it
        #: without limit; dropped wholesale with the other statistics
        #: caches in :meth:`rebuild_shards`.
        self.replan_cache = BoundedCache(DECISION_CACHE_MAX)

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int,
        shards: int,
        backend: str = "memory",
        index_path: str | FilePath | None = None,
        workers: int | None = None,
        prune_empty: bool = True,
        shard_seed: int = 0,
    ) -> "ShardedGraph":
        """Partition ``graph`` and build every shard's index.

        ``workers`` bounds the build pool: ``None`` picks
        ``min(shards, cpu_count)``; ``1`` builds serially (still using
        the columnar per-shard builder).  Workers are *processes* —
        relation composition is pure Python/numpy compute, which
        threads cannot overlap under the GIL — and any pool failure
        (pickling, a sandboxed platform without ``fork``) falls back to
        the serial build, so parallelism is only ever a speedup knob.
        """
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if backend == "disk" and index_path is None:
            # Fail before the payload computation (the dominant build
            # cost), exactly as the unsharded build would.
            raise ValidationError("the disk backend requires a file path")
        if workers is None and graph.edge_count < PARALLEL_MIN_EDGES:
            workers = 1
        resolved = cls._resolve_workers(workers, shards)
        payloads = cls._compute_payloads(
            graph, k, shards, list(range(shards)), resolved, prune_empty, shard_seed
        )
        indexes: list[PathIndex] = []
        try:
            for shard in range(shards):
                indexes.append(
                    cls._shard_index(
                        graph, k, payloads[shard], backend, index_path, shard
                    )
                )
        except BaseException:
            for built in indexes:
                built.close()
            raise
        return cls(
            graph,
            k,
            indexes,
            backend,
            index_path,
            resolved,
            prune_empty,
            shard_seed=shard_seed,
        )

    @staticmethod
    def _resolve_workers(workers: int | None, shards: int) -> int:
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, shards))

    @classmethod
    def _compute_payloads(
        cls,
        graph: Graph,
        k: int,
        shard_count: int,
        shard_ids: list[int],
        workers: int,
        prune_empty: bool,
        seed: int = 0,
    ) -> dict[int, ShardPayload]:
        if workers > 1 and len(shard_ids) > 1:
            try:
                # Injection seam for the whole-pool stage: a crash here
                # models the pool itself dying (fork failure, OOM kill)
                # and exercises the serial fallback below.
                fire("shard.build", stage="pool")
                return cls._parallel_payloads(
                    graph, k, shard_count, shard_ids, workers, prune_empty, seed
                )
            except (BrokenExecutor, PicklingError, TransientError):
                # Pool infrastructure can fail on platforms without
                # fork or with unpicklable payloads; the serial build
                # below is the correctness path either way.  A genuine
                # workload error raised *inside* a worker (a
                # ValidationError, an OSError, a MemoryError)
                # propagates instead — retrying it serially would only
                # double time-to-fail.
                pass
        return {
            shard: cls._serial_payload(
                graph, k, shard_count, shard, prune_empty, seed
            )
            for shard in shard_ids
        }

    @staticmethod
    def _serial_payload(
        graph: Graph,
        k: int,
        shard_count: int,
        shard: int,
        prune_empty: bool,
        seed: int = 0,
    ) -> ShardPayload:
        """One shard's payload on the serial path, with build retry.

        Transient faults retry with backoff *per shard* — one flaky
        shard no longer restarts the whole build.  A worker-crash fault
        that persists through the retries is permanent for this build
        and surfaces as a typed :class:`ShardUnavailableError` naming
        the shard (degraded *query* answers exist; degraded *builds* do
        not — an index missing a shard would silently under-answer
        every future query).
        """

        def attempt() -> ShardPayload:
            fire("shard.build", shard=shard)
            return _shard_payload(graph, k, shard_count, shard, prune_empty, seed)

        try:
            return retry_call(attempt)
        except TransientError as error:
            raise ShardUnavailableError(
                f"shard {shard} build failed after retries: {error}",
                shard=shard,
            ) from error
        except BrokenExecutor as error:
            raise ShardUnavailableError(
                f"shard {shard} build worker crashed: {error}", shard=shard
            ) from error

    @staticmethod
    def _parallel_payloads(
        graph: Graph,
        k: int,
        shard_count: int,
        shard_ids: list[int],
        workers: int,
        prune_empty: bool,
        seed: int = 0,
    ) -> dict[int, ShardPayload]:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(shard_ids)), mp_context=context
            )
        except OSError as error:  # pragma: no cover - resource exhaustion
            # Pool creation failing is an infrastructure problem; report
            # it as such so the caller's fallback fires, while an
            # OSError raised *inside* a worker (re-raised by result()
            # below) still propagates as the workload error it is.
            raise BrokenExecutor(str(error)) from error
        with pool:
            futures = {
                shard: pool.submit(
                    _shard_payload, graph, k, shard_count, shard, prune_empty, seed
                )
                for shard in shard_ids
            }
            return {shard: future.result() for shard, future in futures.items()}

    @classmethod
    def _shard_index(
        cls,
        graph: Graph,
        k: int,
        payload: ShardPayload,
        backend: str,
        index_path: str | FilePath | None,
        shard: int,
    ) -> PathIndex:
        path = cls.shard_index_path(index_path, shard)
        if backend == "disk" and path is not None:
            # The disk B+tree only bulk-loads into an empty file; a
            # stale or partial shard file must go first.
            FilePath(path).unlink(missing_ok=True)
        relations = (
            (LabelPath.decode(encoded), Relation(src, tgt, Order.BY_SRC))
            for encoded, src, tgt in payload
        )
        return PathIndex.from_relations(
            graph, k, relations, backend=backend, path=path
        )

    @staticmethod
    def shard_index_path(
        index_path: str | FilePath | None, shard: int
    ) -> FilePath | None:
        """Per-shard backing file for the disk backend."""
        if index_path is None:
            return None
        return FilePath(f"{index_path}.shard{shard}")

    # -- shard topology ---------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shard_indexes(self) -> tuple[PathIndex, ...]:
        """The per-shard indexes (read-only view, for tests/benchmarks)."""
        return tuple(self._shards)

    def owner(self, node_id: int) -> int:
        return shard_of(node_id, len(self._shards), self.shard_seed)

    def owned_ids(self, shard: int) -> list[int]:
        """All graph node ids the shard owns, ascending (cached).

        One pass assigns every node to its shard; the lists are reused
        until the graph version moves (every query's epsilon disjunct
        asks for them, so rescanning per call would cost
        O(nodes x shards) per query).
        """
        if self._owned_version != self.graph.version:
            count = len(self._shards)
            lists: list[list[int]] = [[] for _ in range(count)]
            for node_id in self.graph.node_ids():
                lists[shard_of(node_id, count, self.shard_seed)].append(node_id)
            self._owned_lists = lists
            self._owned_version = self.graph.version
        return self._owned_lists[shard]

    def shards_touching(self, vertices: Iterable[int]) -> set[int]:
        """Shards whose relations can change when edges at ``vertices`` do.

        A length-``<= k`` path using an edge at ``vertices`` on hop
        ``i`` starts within ``i - 1 <= k - 1`` undirected hops of an
        endpoint, so the owners of the radius-``k - 1`` undirected ball
        around ``vertices`` are exactly the shards whose index entries
        a mutation there can create or destroy.  Callers must evaluate
        the ball on the graph that *contains* the edge: post-insert for
        additions, pre-delete for removals.
        """
        count = len(self._shards)
        seed = self.shard_seed
        frontier = set(vertices)
        seen = set(frontier)
        touched = {shard_of(node, count, seed) for node in frontier}
        for _ in range(self.k - 1):
            if not frontier or len(touched) == count:
                break
            next_frontier: set[int] = set()
            for node in frontier:
                for neighbor in self.graph.undirected_neighbors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.add(neighbor)
                        touched.add(shard_of(neighbor, count, seed))
            frontier = next_frontier
        return touched

    def rebuild_shards(
        self, shard_ids: Iterable[int], workers: int | None = None
    ) -> None:
        """Recompute the listed shards against the current graph.

        All payloads are computed before any shard is swapped, so a
        failing computation leaves every shard intact; a failing swap
        propagates and the API layer discards the whole index (the same
        all-or-nothing contract as a full rebuild).  Must not be used
        across an alphabet change — the unlisted shards' path sets
        would silently be stale (:attr:`alphabet` is the guard).
        """
        if self.alphabet != self.graph.labels():
            raise ValidationError(
                "edge-label vocabulary changed; rebuild the whole index"
            )
        shard_ids = sorted(set(shard_ids))
        for shard in shard_ids:
            if not 0 <= shard < len(self._shards):
                raise ValidationError(f"no such shard {shard}")
        resolved = self._resolve_workers(
            workers if workers is not None else self._build_workers,
            max(len(shard_ids), 1),
        )
        payloads = self._compute_payloads(
            self.graph,
            self.k,
            len(self._shards),
            shard_ids,
            resolved,
            self._prune_empty,
            self.shard_seed,
        )
        for shard in shard_ids:
            old = self._shards[shard]
            if self._backend == "disk":
                # Release the stale file before the unlink+rebuild.
                old.close()
            replacement = self._shard_index(
                self.graph,
                self.k,
                payloads[shard],
                self._backend,
                self._index_path,
                shard,
            )
            self._shards[shard] = replacement
            if self._backend != "disk":
                old.close()
        # Every statistics cache is stale now: rebuilt shards changed
        # their catalogs, and the graph mutation behind the rebuild
        # moved |paths_k(G)| for *all* shards' selectivities.
        self.invalidate_statistics()

    def invalidate_statistics(self) -> None:
        """Drop every statistics cache (after a rebuild or a patch).

        Patched or rebuilt shards changed their catalogs, and the graph
        mutation behind either moved ``|paths_k(G)|`` for *all* shards'
        selectivities.
        """
        self._merged_counts = None
        self._total_paths_k = None
        self._shard_statistics = [None for _ in self._shards]
        self.replan_cache.clear()

    # -- delta patching (the sharded write path) --------------------------

    @property
    def supports_patch(self) -> bool:
        """Whether every shard index takes point edits in place.

        True for the memory backend (its B+tree has point
        insert/delete); the disk and compressed backends only
        bulk-load, so mutations there fall back to the ball rebuild.
        """
        return all(
            getattr(shard, "supports_patch", False) for shard in self._shards
        )

    def patch_shards(self, changes: dict[int, dict]) -> None:
        """Apply per-shard index deltas in place of a ball rebuild.

        ``changes`` maps shard id -> (encoded path -> ``(adds,
        removes)`` pair lists), the shape
        :func:`repro.write.delta.resolve_patch` produces.  Inserts and
        deletes are idempotent at the backend, so patching is safe to
        drive from a recheck that lists a pair already in its final
        state.  Statistics caches drop afterwards, exactly as for
        :meth:`rebuild_shards`.  Must not be used across an alphabet
        change — same guard, same reason.
        """
        if self.alphabet != self.graph.labels():
            raise ValidationError(
                "edge-label vocabulary changed; rebuild the whole index"
            )
        for shard in changes:
            if not 0 <= shard < len(self._shards):
                raise ValidationError(f"no such shard {shard}")
        for shard, patches in changes.items():
            index = self._shards[shard]
            for encoded, (adds, removes) in patches.items():
                index.patch(LabelPath.decode(encoded), adds, removes)
        self.invalidate_statistics()

    # -- PathIndex facade (global scatter-gather) -------------------------

    def scan(self, path: LabelPath) -> Relation:
        """``I_{G,k}(p)`` — the union of every shard's slice, BY_SRC.

        Per-shard slices are disjoint (they partition by start owner),
        so the packed-key union is a pure merge; sort order and
        duplicate-freedom match the unsharded scan exactly.
        """
        return rel.union(shard.scan(path) for shard in self._shards)

    def scan_swapped(self, path: LabelPath) -> Relation:
        """The relation of ``p`` sorted by (tgt, src) — inverse-scan trick.

        Exactly the unsharded implementation lifted over the merge:
        scatter-gather the inverse path (itself indexed in every shard)
        and swap the merged columns zero-copy.
        """
        return rel.swap(self.scan(path.inverted()))

    def scan_from(self, path: LabelPath, source: int) -> list[int]:
        """``I(p, a)`` routed to the one shard owning ``a``."""
        return self._shards[self.owner(source)].scan_from(path, source)

    def contains(self, path: LabelPath, source: int, target: int) -> bool:
        """``I(p, a, b)`` routed to the one shard owning ``a``."""
        return self._shards[self.owner(source)].contains(path, source, target)

    def count(self, path: LabelPath) -> int:
        return sum(shard.count(path) for shard in self._shards)

    def counts_by_path(self) -> dict[str, int]:
        """Merged exact counts (the statistics layer's input).

        Keys are the union of the shards' catalogs.  A path pruned as
        empty in *every* shard is absent here where the unsharded
        catalog may record it with count 0; both sides estimate such a
        path at 0, so statistics agree where it matters.

        The merge is cached: planner costing probes this per query, and
        re-summing N shard catalogs each time was pure waste.  The cache
        is invalidated by :meth:`rebuild_shards` (the only way shard
        contents change under one instance); a defensive copy is
        returned so callers cannot corrupt it.
        """
        if self._merged_counts is None:
            self._merged_counts = merge_shard_counts(
                [shard.counts_by_path() for shard in self._shards]
            )
        return dict(self._merged_counts)

    def paths(self) -> Iterator[LabelPath]:
        """Every cataloged label path, in first-seen (trie) order."""
        seen: set[str] = set()
        for shard in self._shards:
            for encoded in shard.counts_by_path():
                if encoded not in seen:
                    seen.add(encoded)
                    yield LabelPath.decode(encoded)

    @property
    def path_count(self) -> int:
        return sum(1 for _ in self.paths())

    @property
    def entry_count(self) -> int:
        return sum(shard.entry_count for shard in self._shards)

    def shard_entry_counts(self) -> list[int]:
        """Index entries per shard — the rebalancer's skew signal."""
        return [shard.entry_count for shard in self._shards]

    @property
    def backend_name(self) -> str:
        return f"sharded[{len(self._shards)}x{self._backend}]"

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedGraph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- statistics (global merge + per-shard slices) ---------------------

    def total_paths_k(self) -> int:
        """``|paths_k(G)|`` — the shared selectivity denominator (cached)."""
        if self._total_paths_k is None:
            self._total_paths_k = count_paths_k(self.graph, self.k)
        return self._total_paths_k

    def merged_statistics(self) -> ExactStatistics:
        """Exact global statistics from the merged shard catalogs.

        Agrees with ``ExactStatistics.from_index(unsharded_index)`` on
        every path estimate: per-shard slices partition each relation,
        so their counts sum to the global catalog (paths empty in every
        shard estimate to 0 on both sides).  The API layer uses this in
        place of a fresh global recount, reusing both caches.
        """
        return ExactStatistics(
            counts=self.counts_by_path(),
            k=self.k,
            total_paths_k=self.total_paths_k(),
        )

    def shard_statistics(self, shard: int) -> ShardStatistics:
        """One shard's statistics slice (exact counts + histogram).

        Built on first use from the shard's already-materialized
        catalog — one pass over its counts — and cached until
        :meth:`rebuild_shards` invalidates it.  The scatter planner
        reads this per slice: exact zeros drive shard pruning,
        histogram estimates drive per-shard join-order re-planning.
        """
        if not 0 <= shard < len(self._shards):
            raise ValidationError(f"no such shard {shard}")
        cached = self._shard_statistics[shard]
        if cached is None:
            cached = ShardStatistics(
                shard=shard,
                counts=self._shards[shard].counts_by_path(),
                k=self.k,
                total_paths_k=self.total_paths_k(),
                buckets=SHARD_STATISTICS_BUCKETS,
            )
            self._shard_statistics[shard] = cached
        return cached

    # -- per-shard slices (the scatter side of scatter-gather) ------------

    def shard_scan(self, shard: int, path: LabelPath, deadline=None) -> Relation:
        """One shard's slice of ``p(G)``, BY_SRC-sorted.

        Retried at scan granularity: a scan is the finest idempotent
        unit, so a transient fault capped per ``(shard, path)`` always
        recovers on the immediate retry — a whole-slice retry would
        re-roll every *other* path's fault dice and can cascade.
        ``deadline`` clips the retry backoff (and, on the RPC-backed
        subclass, rides in every request header) so a slow shard can
        never outlive the query's budget.
        """

        def attempt() -> Relation:
            fire("shard.scan", shard=shard, path=path.encode())
            return self._shards[shard].scan(path)

        return retry_call(attempt, deadline=deadline)

    def shard_scan_swapped(
        self, shard: int, path: LabelPath, deadline=None
    ) -> Relation:
        """One shard's slice of ``p(G)``, re-sorted BY_TGT.

        The inverse-path trick does not apply shard-locally — the
        shard's ``p⁻`` entries are restricted by the *other* endpoint —
        so the slice is explicitly re-sorted.  The slice is ``1/N`` of
        the relation, so the per-shard sorts sum to one global sort.
        """

        def attempt() -> Relation:
            fire("shard.scan", shard=shard, path=path.encode())
            return rel.dedup_sort(self._shards[shard].scan(path), Order.BY_TGT)

        return retry_call(attempt, deadline=deadline)

    def shard_identity(self, shard: int) -> Relation:
        """The identity relation over the shard's owned vertices."""
        return rel.identity(self.owned_ids(shard))

    def __repr__(self) -> str:
        return (
            f"ShardedGraph(shards={len(self._shards)}, k={self.k}, "
            f"backend={self._backend!r}, entries={self.entry_count})"
        )
