"""The public API: :class:`GraphDatabase`.

A facade tying the substrates together in the life-of-a-query order the
paper demonstrates: load a graph, build the k-path index and its
histogram, then parse / rewrite / plan / execute queries with any of
the four strategies — or with one of the three literature baselines.

Example
-------
>>> from repro.api import GraphDatabase
>>> from repro.graph.examples import FIGURE1_EDGES
>>> db = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
>>> result = db.query("supervisor/^worksFor")
>>> sorted(result.pairs)
[('kim', 'sue')]
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.baselines import automaton_eval, datalog_eval, reachability_eval
from repro.concurrency import ReadWriteLock
from repro.config import ServiceConfig, default_shard_count  # noqa: F401
from repro.engine.executor import (
    ExecutionReport,
    evaluate_ast,
    execute_prepared,
    prepare_ast,
)
from repro.engine.operators import SharedScanMemo
from repro.engine.plan import render
from repro.engine.planner import Planner, Strategy
from repro.engine.prepared import (
    BoundStatement,
    PlanArtifactStore,
    PreparedStatement,
)
from repro.errors import (
    PathIndexError,
    QueryTimeoutError,
    TransientError,
    ValidationError,
)
from repro.faults import Deadline, RunContext, retry_call
from repro.graph.graph import Graph, LabelPath
from repro.graph.io import load_csv, load_edgelist, load_json
from repro.graph.stats import GraphSummary, star_bound, summarize
from repro.indexes.builder import enumerate_label_paths
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics
from repro.relation import restrict_src
from repro.rpq.ast import Node
from repro.rpq.parser import Template, parse, parse_template
from repro.rpq.rewrite import DEFAULT_MAX_DISJUNCTS, NormalForm, normalize
from repro.rpq.semantics import eval_ast
from repro.sharding import ShardedGraph, shard_of
from repro.stats import (
    CacheStats,
    EngineStats,
    FaultStats,
    PreparedStats,
    ScatterStats,
    WriteStats,
)
from repro.write.commit import GroupCommitter
from repro.write.delta import resolve_patch, stage_group
from repro.write.log import MutationLog
from repro.write.mutation import ApplyResult, Mutation, MutationBatch

#: Methods accepted by :meth:`GraphDatabase.query`: the paper's four
#: index strategies plus the literature baselines (NFA and DFA product
#: search, Datalog, reachability) and the reference evaluator.
BASELINE_METHODS = ("automaton", "dfa", "datalog", "reachability", "reference")

#: Sentinel distinguishing "not passed" from any real value in the
#: deprecated keyword-argument construction path.
_UNSET = object()

#: The keyword knobs folded into :class:`~repro.config.ServiceConfig`.
#: Passing any of them still works but warns; ``config=`` is the way.
_LEGACY_KNOBS = (
    "backend",
    "index_path",
    "histogram_buckets",
    "query_cache_size",
    "query_cache_max_pairs",
    "shards",
    "shard_build_workers",
    "shard_query_workers",
)


@dataclass(frozen=True, slots=True)
class QueryResult:
    """The answer to one query plus how it was obtained.

    ``version`` is the graph version the answer was computed (or
    cached) against — the consistency token of the concurrent service
    layer: a result tagged ``version=v`` is exactly the single-threaded
    answer over the graph as of version ``v``.
    """

    query: str
    method: str
    pairs: frozenset[tuple[str, str]]
    seconds: float
    report: ExecutionReport | None = None
    cached: bool = False
    version: int = -1

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self.pairs


class GraphDatabase:
    """An RPQ-queryable graph with a k-path index and histogram."""

    def __init__(
        self,
        graph: Graph,
        k: int | None = None,
        backend=_UNSET,
        index_path=_UNSET,
        histogram_buckets=_UNSET,
        build: bool = True,
        query_cache_size=_UNSET,
        query_cache_max_pairs=_UNSET,
        shards=_UNSET,
        shard_build_workers=_UNSET,
        shard_query_workers=_UNSET,
        config: ServiceConfig | None = None,
    ):
        """Open a graph for querying.

        Deployment knobs live in one :class:`~repro.config.ServiceConfig`
        passed as ``config=``; ``k`` stays a first-class argument (it is
        the paper's index parameter, not a deployment detail) and
        overrides ``config.k`` when both are given.  The individual
        keyword knobs (``backend=``, ``shards=``, ...) are deprecated
        shims: they still work, fold into a config internally, and warn
        — they cannot be combined with an explicit ``config=``.
        """
        legacy = {
            name: value
            for name, value in zip(
                _LEGACY_KNOBS,
                (
                    backend,
                    index_path,
                    histogram_buckets,
                    query_cache_size,
                    query_cache_max_pairs,
                    shards,
                    shard_build_workers,
                    shard_query_workers,
                ),
            )
            if value is not _UNSET
        }
        if config is None:
            if legacy:
                # Knob names map one-to-one onto ServiceConfig fields;
                # the warning names each exact field so the migration
                # is copy-pasteable.
                moved = ", ".join(
                    f"{name}= is now ServiceConfig.{name}"
                    for name in sorted(legacy)
                )
                warnings.warn(
                    f"GraphDatabase keyword knobs are deprecated; pass "
                    f"config=ServiceConfig(...) instead ({moved})",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = ServiceConfig(k=k if k is not None else 2, **legacy)
        else:
            if legacy:
                raise ValidationError(
                    f"pass {', '.join(sorted(legacy))} inside config=, "
                    f"not alongside it"
                )
            if k is not None and k != config.k:
                config = config.with_overrides(k=k)
        #: The resolved deployment configuration (frozen).
        self.config = config
        # shards=None means "deployment default": the
        # REPRO_DEFAULT_SHARDS environment knob, or 1.  Resolved once,
        # here — the environment is read at construction, not per query.
        resolved_shards = config.resolved_shards()
        self.graph = graph
        self.k = config.k
        self._backend = config.backend
        self._index_path = config.index_path
        self._histogram_buckets = config.histogram_buckets
        # Sharding knob (fully transparent): shards=1 runs the plain
        # unsharded engine; shards=N hash-partitions the index by path
        # start (repro.sharding) with identical answers.  Build fans out
        # over shard_build_workers processes (None = one per core);
        # shard_query_workers threads the scatter side of execution.
        self._shards = resolved_shards
        self._shard_build_workers = config.shard_build_workers
        self._shard_query_workers = config.shard_query_workers
        # Hash seed of the vertex-to-shard map.  Mutable on purpose:
        # rebalance() re-seeds it and triggers one full rebuild.
        self._shard_seed = config.shard_seed
        self._index: PathIndex | ShardedGraph | None = None
        self._histogram: EquiDepthHistogram | None = None
        self._exact_statistics: ExactStatistics | None = None
        # Concurrency model: queries are readers, mutations and index
        # rebuilds are writers.  The RW lock makes (version snapshot,
        # cache probe, execution, cache store) one atomic read section
        # — a writer can never interleave between computing a cache key
        # and reading the index, so a served answer always matches the
        # version it is keyed under.  The cache mutex guards the LRU
        # OrderedDict and every counter (reads reorder the LRU, so even
        # lookups are writes).
        self._lock = ReadWriteLock()
        self._cache_lock = threading.Lock()
        # LRU cache over fully answered queries, keyed on
        # (query, method, statistics flavor, disjunct budget, graph
        # version) so graph mutations can never serve stale answers;
        # build_index() additionally clears it wholesale.  Bounded both
        # by entry count and by total cached answer pairs, so a run of
        # huge answers cannot pin unbounded memory.
        self._query_cache: OrderedDict[tuple, QueryResult] = OrderedDict()
        self._query_cache_size = max(0, config.query_cache_size)
        self._query_cache_max_pairs = max(0, config.query_cache_max_pairs)
        self._cached_pairs = 0
        self._cache_version = graph.version
        self._cache_hits = 0
        self._cache_misses = 0
        # Aggregated executor scan-memo traffic (per-execution memo of
        # index scans / shared subplans), summed over every query that
        # actually executed through the engine.
        self._scan_memo_hits = 0
        self._scan_memo_misses = 0
        # Aggregated scatter-planning decisions (sharded engines):
        # shard slices executed / skipped as provably empty / disjuncts
        # re-planned per shard, summed over every executed query.
        self._shards_scanned = 0
        self._shards_pruned = 0
        self._disjuncts_pruned = 0
        self._shards_replanned = 0
        # Shard slices dropped by degraded-mode queries (see
        # ``query(degraded=True)``): every increment corresponds to one
        # answer that was served partial instead of failing.
        self._shards_failed = 0
        # Prepared-statement traffic (repro.engine.prepared): per-binding
        # plan-cache hits/misses/invalidations, plans revived from the
        # persistent artifact store, and plans actually computed.  The
        # statistics epoch counts statistics refreshes; prepared plans
        # are valid only for the exact (graph version, epoch) pair they
        # were planned under, so a build_index() on an unchanged graph
        # still invalidates them.
        self._statistics_epoch = 0
        self._prepared_hits = 0
        self._prepared_misses = 0
        self._prepared_invalidations = 0
        self._artifact_loads = 0
        self._plans_computed = 0
        # Plans persist only where the index does: the disk backend's
        # artifact file sits next to the index file, so a restarted
        # service revives both together.  Memory backends get an inert
        # store (every probe misses).
        self._plan_store = PlanArtifactStore(
            str(config.index_path) + ".plans.json"
            if config.backend == "disk" and config.index_path is not None
            else None
        )
        # The write path: every mutation flows through apply() -> the
        # group committer -> (optionally) the durable mutation log ->
        # delta patching or the rebuild fallback.  Opening an existing
        # log replays its durable suffix onto the provided graph first,
        # so a restarted service resumes from its last acknowledged
        # write (replay happens before the build below sees the graph).
        self._write_patched = 0
        self._write_rebuilt = 0
        self._replayed_batches = 0
        self._mutation_log: MutationLog | None = None
        if config.mutation_log_path is not None:
            self._mutation_log = MutationLog(config.mutation_log_path)
            for _seq, batch in self._mutation_log.replay():
                for mutation in batch:
                    mutation.apply_to(graph)
                self._replayed_batches += 1
        self._committer = GroupCommitter(
            self._commit_group,
            window_s=config.group_commit_ms / 1000.0,
            max_group=config.group_commit_max,
        )
        if build:
            self.build_index()

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[str, str, str]], k: int | None = None, **kwargs
    ) -> "GraphDatabase":
        """Build from ``(source, label, target)`` triples."""
        return cls(Graph.from_edges(edges), k=k, **kwargs)

    @classmethod
    def from_file(
        cls, path: str | Path, k: int | None = None, **kwargs
    ) -> "GraphDatabase":
        """Load a graph file by extension (.tsv/.txt, .json, .csv)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix in (".tsv", ".txt", ".edgelist"):
            graph = load_edgelist(path)
        elif suffix == ".json":
            graph = load_json(path)
        elif suffix == ".csv":
            graph = load_csv(path)
        else:
            raise ValidationError(f"unrecognized graph file extension: {path}")
        return cls(graph, k=k, **kwargs)

    # -- index & statistics ----------------------------------------------------------

    def build_index(self) -> PathIndex:
        """(Re)build the k-path index and both statistics providers.

        Runs as a writer: in-flight queries finish first, and no query
        observes a half-replaced index/histogram pair.  Invalidates the
        query cache: any cached answer may predate the graph state this
        index now reflects.
        """
        with self._lock.write_locked():
            return self._build_index_locked()

    def _build_index_locked(self) -> PathIndex:
        """Rebuild index + statistics; caller holds the write lock.

        Built into locals and swapped in only on success, so a failed
        rebuild never leaves a half-replaced index/statistics triple.
        The disk backend is the exception that forces destruction
        first: its B+tree only bulk-loads into an empty file, so the
        old backend is released (and the file removed) before the
        build — on failure every handle is cleared and queries raise
        the clean "index unavailable" error until a rebuild succeeds.
        """
        self.cache_clear()
        old_index = self._index
        # Skew-planning knobs live on the ShardedGraph; a rebuild must
        # not silently reset toggles the user set on the old instance.
        old_knobs = (
            (old_index.scatter_pruning, old_index.replan_divergence)
            if isinstance(old_index, ShardedGraph)
            else None
        )
        try:
            if self._backend == "disk":
                if old_index is not None:
                    # Clear the handle before close: if the close
                    # itself dies, the stale pre-mutation index must
                    # not stay installed behind the mutated graph.
                    self._index = None
                    closing, old_index = old_index, None
                    closing.close()
                # Unconditional: a previously *failed* build leaves a
                # partial non-empty file behind with no live index — it
                # must be removed too, or every retry dies in bulk_load.
                if self._index_path is not None:
                    Path(self._index_path).unlink(missing_ok=True)
                    for shard in range(self._shards):
                        shard_path = ShardedGraph.shard_index_path(
                            self._index_path, shard
                        )
                        shard_path.unlink(missing_ok=True)
            if self._shards > 1:
                index = ShardedGraph.build(
                    self.graph,
                    self.k,
                    shards=self._shards,
                    backend=self._backend,
                    index_path=self._index_path,
                    workers=self._shard_build_workers,
                    shard_seed=self._shard_seed,
                )
                index.query_workers = self._shard_query_workers
                # Declared knobs seed the fresh instance; toggles the
                # user poked on the *old* instance still win, so a
                # rebuild never silently resets a live experiment.
                index.scatter_pruning = self.config.scatter_pruning
                index.replan_divergence = self.config.replan_divergence
                if old_knobs is not None:
                    index.scatter_pruning, index.replan_divergence = old_knobs
                exact_statistics, histogram = self._refresh_sharded_statistics(index)
            else:
                index = PathIndex.build(
                    self.graph,
                    self.k,
                    backend=self._backend,
                    path=self._index_path,
                )
                exact_statistics = ExactStatistics.from_index(index, self.graph)
                histogram = EquiDepthHistogram.from_counts(
                    index.counts_by_path(),
                    k=self.k,
                    total_paths_k=exact_statistics.total_paths_k,
                    buckets=self._histogram_buckets,
                )
        except BaseException:
            # Never leave a stale or partial triple behind a mutated
            # graph: clear everything so _ensure_built can rebuild and
            # in-flight readers fail loudly instead of answering from
            # pre-mutation state.
            self._index = None
            self._exact_statistics = None
            self._histogram = None
            raise
        self._index = index
        self._exact_statistics = exact_statistics
        self._histogram = histogram
        self._statistics_epoch += 1
        self._plan_store.open(self._plan_fingerprint())
        if old_index is not None:
            old_index.close()
        return index

    def _refresh_sharded_statistics(
        self, index: ShardedGraph
    ) -> tuple[ExactStatistics, EquiDepthHistogram]:
        """Derive the statistics pair from a (re)built sharded index.

        One extra pass over each shard's catalog builds the per-shard
        statistics alongside the index, and the merged view doubles as
        the global exact statistics — ``|paths_k(G)|`` and the catalog
        merge are computed once and shared by everything downstream.
        The one recipe serves both the full build and the
        partial-rebuild path, so the two can never drift.
        """
        counts = index.counts_by_path()
        exact_statistics = ExactStatistics(
            counts=counts, k=self.k, total_paths_k=index.total_paths_k()
        )
        for shard in range(index.shard_count):
            index.shard_statistics(shard)
        histogram = EquiDepthHistogram.from_counts(
            counts,
            k=self.k,
            total_paths_k=exact_statistics.total_paths_k,
            buckets=self._histogram_buckets,
        )
        return exact_statistics, histogram

    def _ensure_built(self) -> None:
        """Resolve lazy build *before* entering a read section.

        The RW lock is not reentrant, so the lazy build must never
        trigger inside ``read_locked()``; double-checked under the
        write lock.  ``_index`` only returns to ``None`` when a rebuild
        fails — readers then either retry the build here or get
        :meth:`_require_index`'s clean error.
        """
        if self._index is None:
            with self._lock.write_locked():
                if self._index is None:
                    self._build_index_locked()

    @property
    def index(self) -> PathIndex:
        """The k-path index (building it on first use if needed)."""
        self._ensure_built()
        assert self._index is not None
        return self._index

    @property
    def histogram(self) -> EquiDepthHistogram:
        """The equi-depth histogram ``sel_{G,k}``."""
        if self._histogram is None:
            self._ensure_built()
        assert self._histogram is not None
        return self._histogram

    @property
    def exact_statistics(self) -> ExactStatistics:
        """Exact per-path statistics (ablation alternative)."""
        if self._exact_statistics is None:
            self._ensure_built()
        assert self._exact_statistics is not None
        return self._exact_statistics

    def selectivity(self, path_text: str) -> float:
        """Histogram estimate of ``sel_{G,k}`` for a label path.

        ``path_text`` uses step syntax: ``knows/knows/worksFor`` or
        ``knows/^worksFor``.
        """
        path = self._parse_label_path(path_text)
        return self.histogram.selectivity(path)

    def summary(self) -> GraphSummary:
        """Graph-level statistics (size, labels, degrees)."""
        return summarize(self.graph)

    # -- queries -----------------------------------------------------------------------

    def query(
        self,
        query: str | Node,
        method: str = "minsupport",
        use_exact_statistics: bool = False,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
        use_cache: bool = True,
        timeout_ms: float | None = None,
        degraded: bool = False,
    ) -> QueryResult:
        """Answer an RPQ.

        ``method`` is one of the paper's strategies (``naive``,
        ``semi-naive``, ``minsupport``, ``minjoin``) or a baseline
        (``automaton``, ``datalog``, ``reachability``, ``reference``).

        ``timeout_ms`` puts a deadline on the whole execution: the
        engine checks it cooperatively at operator, scatter, and
        closure-round boundaries and raises
        :class:`~repro.errors.QueryTimeoutError` (carrying the partial
        scatter counters) rather than running arbitrarily long.
        ``degraded=True`` opts into partial answers: if a shard stays
        down after retries, its slice is dropped and the result comes
        back with ``report.partial=True`` and ``report.shards_failed``
        counting the dropped slices — every returned pair is still a
        true answer pair (the operators are monotone), the answer is
        just possibly incomplete.  Partial answers are never stored in
        the query cache.  Both knobs apply to the index strategies
        only; baselines run outside the resilient engine.

        Repeated queries are answered from an LRU cache keyed on
        ``(query, method, graph version)`` — heavy-traffic workloads
        skip the rewrite/plan/execute pipeline entirely.  The cache is
        invalidated by :meth:`build_index` and bypassed automatically
        after any graph mutation (the graph's version is part of the
        key), so stale answers are never served.  Cache hits carry
        ``cached=True``, ``seconds=0.0`` and ``report=None`` (reports
        are per-execution diagnostics and are not retained).
        ``use_cache=False`` bypasses the cache entirely — no lookup,
        no store, no counter updates — which is what the benchmark
        harness wants.

        Safe to call from any number of threads concurrently with
        :meth:`add_edge` / :meth:`remove_edge` / :meth:`build_index`:
        the whole (version snapshot, cache probe, execution, cache
        store) sequence runs as one reader section, so the answer is
        always exactly the single-threaded answer for the
        :attr:`QueryResult.version` it carries.
        """
        text, node = self._parse(query)
        # Validate the method before touching any shared state, so a
        # raising method name never skews the cache counters.
        strategy = None if method in BASELINE_METHODS else Strategy.parse(method)
        context = None
        if timeout_ms is not None or degraded:
            if strategy is None:
                raise ValidationError(
                    f"timeout_ms/degraded apply to the index strategies; "
                    f"baseline {method!r} runs outside the resilient engine"
                )
            # The deadline clock starts at submission, before the build
            # check and lock wait — a caller's timeout bounds the whole
            # call, not just the execution core.
            deadline = Deadline(timeout_ms) if timeout_ms is not None else None
            context = RunContext(deadline=deadline, degraded=degraded)
        if strategy is not None:
            self._ensure_built()
        with self._lock.read_locked():
            return self._query_locked(
                text,
                node,
                method,
                strategy,
                use_exact_statistics,
                max_disjuncts,
                use_cache,
                context,
            )

    def _query_locked(
        self,
        text: str,
        node: Node,
        method: str,
        strategy: Strategy | None,
        use_exact_statistics: bool,
        max_disjuncts: int,
        use_cache: bool,
        context: RunContext | None = None,
    ) -> QueryResult:
        """Answer one parsed query; caller holds the read lock."""
        version = self.graph.version
        cache_key = self._cache_key(
            text,
            method,
            strategy,
            use_exact_statistics,
            max_disjuncts,
            version,
        )
        if use_cache:
            cached = self._cache_lookup(cache_key, version)
            if cached is not None:
                return cached
        started = time.perf_counter()
        if strategy is None:
            pairs = self._run_baseline(method, node)
            seconds = time.perf_counter() - started
            result = QueryResult(
                query=text,
                method=method,
                pairs=frozenset(self.graph.pairs_to_names(pairs)),
                seconds=seconds,
                version=version,
            )
        else:
            index = self._require_index()
            statistics = (
                self._exact_statistics if use_exact_statistics else self._histogram
            )
            report = evaluate_ast(
                node,
                index,
                self.graph,
                statistics,
                strategy,
                max_disjuncts,
                context=context,
            )
            seconds = time.perf_counter() - started
            result = QueryResult(
                query=text,
                method=strategy.value,
                pairs=frozenset(self.graph.pairs_to_names(report.relation)),
                seconds=seconds,
                report=report,
                version=version,
            )
            with self._cache_lock:
                self._scan_memo_hits += report.scan_memo_hits
                self._scan_memo_misses += report.scan_memo_misses
                self._shards_scanned += report.shards_scanned
                self._shards_pruned += report.shards_pruned
                self._disjuncts_pruned += report.disjuncts_pruned
                self._shards_replanned += report.shards_replanned
                self._shards_failed += report.shards_failed
        if use_cache:
            with self._cache_lock:
                self._cache_misses += 1
                self._remember_locked(cache_key, result)
        return result

    def _require_index(self) -> PathIndex:
        """The index for a read section; fails cleanly if a rebuild died."""
        index = self._index
        if index is None:
            raise PathIndexError(
                "index unavailable: a previous rebuild failed; call build_index()"
            )
        return index

    def _cache_key(
        self,
        text: str,
        method: str,
        strategy: Strategy | None,
        use_exact_statistics: bool,
        max_disjuncts: int,
        version: int,
    ) -> tuple:
        if strategy is None:
            # Baselines ignore statistics flavor and disjunct budget;
            # keep them out of the key so identical answers share one
            # entry (and one slot of the pairs budget).
            return (text, method, version)
        # Key on the canonical strategy value, not the raw method
        # string, so spelling aliases ("minsupport" / "min-support" /
        # "MIN_SUPPORT") share one entry — and match the method the
        # stored result reports.
        return (
            text,
            strategy.value,
            use_exact_statistics,
            max_disjuncts,
            version,
        )

    def _cache_lookup(self, key: tuple, version: int) -> QueryResult | None:
        """Probe the LRU under the cache mutex (a hit reorders it)."""
        with self._cache_lock:
            if self._cache_version != version:
                # The version only grows, so every entry keyed on an
                # older version is dead forever — drop them rather than
                # letting garbage pin the entry/pairs budgets.
                self._cache_clear_locked()
                self._cache_version = version
            cached = self._query_cache.get(key)
            if cached is not None:
                self._query_cache.move_to_end(key)
                self._cache_hits += 1
                return replace(cached, seconds=0.0, cached=True)
        return None

    # -- mutations ---------------------------------------------------------------

    def apply(self, mutations) -> ApplyResult:
        """Apply one batch of edge mutations; the single write entry point.

        ``mutations`` is a :class:`~repro.write.mutation.Mutation`, an
        iterable of them, or a :class:`~repro.write.mutation.MutationBatch`.
        The batch rides a commit *group*: concurrent callers coalesce
        behind one leader into one write-lock acquisition, one mutation
        log append run + ``fsync`` (when ``mutation_log_path`` is set),
        and one index update — per-shard delta patching when the group
        is local (``delta_patching``, memory-backed shards), a ball or
        full rebuild otherwise.  By the time this returns the batch is
        durable (if logging) and visible to queries; the result says
        how many mutations changed the graph, the version they landed
        on, and how the index absorbed the group.

        ``add_edge`` / ``remove_edge`` are one-element shims over this.
        """
        batch = MutationBatch.coerce(mutations)
        self._ensure_built()
        return self._committer.submit(batch)

    def add_edge(self, source: str, label: str, target: str) -> int | None:
        """Insert an edge; returns the new version, or ``None`` (no-op).

        A shim over :meth:`apply` with a one-mutation batch — same
        durability, group commit, and delta-patching path.  The
        returned version is the group's landing version (under
        concurrent writers it can be later than this edge's own
        insertion, but never earlier).
        """
        result = self.apply(Mutation.add(source, label, target))
        return result.version if result.changed else None

    def remove_edge(self, source: str, label: str, target: str) -> int | None:
        """Delete an edge; returns the new version, or ``None`` (no-op).

        See :meth:`add_edge` — the same one-element :meth:`apply` shim.
        """
        result = self.apply(Mutation.remove(source, label, target))
        return result.version if result.changed else None

    def _commit_group(self, batches) -> list[ApplyResult]:
        """The committer's commit callable: one whole group, durably.

        Write-ahead ordering: every batch is appended to the mutation
        log and fsynced *before* any of them touches the graph.  The
        append+flush unit retries on transients (rolling back the
        half-appended group first, so nothing duplicates); a permanent
        or crash failure rolls the log back (see ``MutationLog.flush``)
        and fails the whole group with nothing applied — re-submitting
        is safe.  Once durable, application cannot fail on input
        (batches validate eagerly at construction), only on index
        trouble, and the index paths below keep their swap-on-success
        contracts.
        """
        batches = list(batches)
        with self._lock.write_locked():
            log = self._mutation_log
            if log is not None:

                def persist() -> None:
                    log.rollback()  # no-op unless a prior try half-appended
                    for batch in batches:
                        log.append(batch)
                    log.flush()

                retry_call(persist)
            return self._apply_group_locked(batches)

    def _apply_group_locked(self, batches) -> list[ApplyResult]:
        """Apply a durable group to graph + index; caller holds the lock."""
        index = self._index
        if isinstance(index, ShardedGraph):
            patchable = self.config.delta_patching and index.supports_patch
            # Delta staging needs the full path enumeration over the
            # pre-group alphabet (an alphabet change falls back anyway);
            # the rebuild path skips collecting deltas entirely.
            paths = (
                enumerate_label_paths(self.graph.labels(), self.k)
                if patchable
                else []
            )
            staged = stage_group(
                self.graph, index, batches, paths, self.config.delta_max_pairs
            )
            counts = staged.batch_counts
            if not staged.changed:
                mode, patched = "noop", ()
            else:
                mode, patched = self._absorb_group_locked(
                    index, staged, batches, patchable
                )
        else:
            # Unsharded (or unbuilt) engine: apply, then full rebuild —
            # the correctness-first baseline the sharded path beats.
            counts = []
            changed = False
            for batch in batches:
                applied = noops = 0
                for mutation in batch:
                    if mutation.apply_to(self.graph):
                        applied += 1
                    else:
                        noops += 1
                counts.append((applied, noops))
                changed = changed or bool(applied)
            if changed:
                self._build_index_locked()
            mode, patched = ("rebuild", ()) if changed else ("noop", ())
        with self._cache_lock:
            if mode == "patch":
                self._write_patched += 1
            elif mode == "rebuild":
                self._write_rebuilt += 1
        version = self.graph.version
        return [
            ApplyResult(
                applied=applied,
                noops=noops,
                version=version,
                mode=mode,
                patched_shards=patched,
            )
            for applied, noops in counts
        ]

    def _absorb_group_locked(
        self, index: ShardedGraph, staged, batches, patchable: bool
    ) -> tuple[str, tuple[int, ...]]:
        """How the sharded index absorbs one applied group.

        The patch path resolves every dirty pair against the (final)
        graph and applies per-shard B+tree point edits in place; any
        fallback — alphabet change, dirty-pair overflow, a non-patching
        backend — takes the ball rebuild of the touched shards (or the
        full rebuild on an alphabet change).  Overridden by the
        coordinator to broadcast to workers instead.
        """
        if not patchable or staged.fallback is not None:
            affected = (
                None if staged.fallback == "alphabet" else set(staged.touched)
            )
            self._rebuild_shards_locked(affected)
            return "rebuild", ()
        changes = resolve_patch(self.graph, index, staged.dirty)
        self.cache_clear()
        try:
            index.patch_shards(changes)
            exact_statistics, histogram = self._refresh_sharded_statistics(index)
        except BaseException:
            # Same contract as a failed partial rebuild: never leave a
            # half-patched triple behind a mutated graph.
            self._index = None
            self._exact_statistics = None
            self._histogram = None
            try:
                index.close()
            except (QueryTimeoutError, TransientError):
                raise
            except Exception:
                pass
            raise
        self._exact_statistics = exact_statistics
        self._histogram = histogram
        self._statistics_epoch += 1
        self._plan_store.open(self._plan_fingerprint())
        return "patch", tuple(sorted(changes))

    def rebalance(self, skew_threshold: float = 2.0, candidates: int = 8) -> bool:
        """Re-seed the vertex-to-shard map if the index has gone skewed.

        A mutation stream concentrated on one neighborhood can leave
        one shard holding far more index entries than its peers,
        serializing every scatter behind it.  When the largest shard
        exceeds ``skew_threshold`` times the mean, this tries
        ``candidates`` alternative hash seeds, scores each by the
        degree-weighted load of its heaviest shard, and — if a strictly
        better seed exists — installs it and rebuilds the index once.
        Returns whether a rebuild happened.  Exposed, never
        auto-triggered: a rebuild is expensive and the operator (or a
        supervision loop) decides when the skew justifies it.
        """
        with self._lock.write_locked():
            index = self._index
            if not isinstance(index, ShardedGraph) or index.shard_count < 2:
                return False
            counts = index.shard_entry_counts()
            mean = sum(counts) / len(counts)
            if mean == 0 or max(counts) <= skew_threshold * mean:
                return False
            # Degree weight approximates how many index entries start
            # at a vertex without re-counting the real catalog per
            # candidate seed.
            shard_count = index.shard_count
            weights = [
                1 + self.graph.degree_out(node) + self.graph.degree_in(node)
                for node in range(self.graph.node_count)
            ]

            def heaviest(seed: int) -> int:
                loads = [0] * shard_count
                for node, weight in enumerate(weights):
                    loads[shard_of(node, shard_count, seed)] += weight
                return max(loads)

            best_seed = self._shard_seed
            best_load = heaviest(best_seed)
            for candidate in range(1, candidates + 1):
                seed = self._shard_seed + candidate
                load = heaviest(seed)
                if load < best_load:
                    best_seed, best_load = seed, load
            if best_seed == self._shard_seed:
                return False
            self._shard_seed = best_seed
            self._build_index_locked()
            return True

    def _rebuild_shards_locked(self, affected: set[int] | None) -> None:
        """Partial index rebuild after a mutation; caller holds the lock.

        Falls back to :meth:`_build_index_locked` whenever the partial
        path cannot be proven safe: no sharded index, an unknown
        neighborhood, a changed label vocabulary, or a ball that
        reached every shard anyway.  The query cache is always cleared
        (the graph version moved, so every entry is dead); statistics
        are re-derived from the merged shard catalogs.
        """
        index = self._index
        if (
            affected is None
            or not isinstance(index, ShardedGraph)
            or index.alphabet != self.graph.labels()
            or len(affected) >= index.shard_count
        ):
            self._build_index_locked()
            return
        self.cache_clear()
        try:
            index.rebuild_shards(affected)
            exact_statistics, histogram = self._refresh_sharded_statistics(index)
        except BaseException:
            # Same contract as a failed full rebuild: never leave a
            # partially refreshed triple behind a mutated graph.  The
            # dropped index is closed first — its shards hold open
            # file handles on the disk backend — without masking the
            # original failure.
            self._index = None
            self._exact_statistics = None
            self._histogram = None
            try:
                index.close()
            except (QueryTimeoutError, TransientError):
                # Never swallow the resilience taxonomy: a deadline or
                # retryable fault inside close() propagates (the
                # rebuild failure rides along as __context__).
                raise
            except Exception:
                pass
            raise
        self._exact_statistics = exact_statistics
        self._histogram = histogram
        self._statistics_epoch += 1
        self._plan_store.open(self._plan_fingerprint())

    # -- batched queries ----------------------------------------------------------

    def query_batch(
        self,
        queries: Sequence[str | Node],
        method: str = "minsupport",
        use_exact_statistics: bool = False,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
        use_cache: bool = True,
        workers: int = 1,
    ) -> list[QueryResult]:
        """Answer many RPQs as one batch against one graph snapshot.

        The whole batch runs inside a single reader section, so every
        result carries the same :attr:`QueryResult.version` — mutations
        are either fully before or fully after the batch.  Three
        mechanisms make this faster than a ``query()`` loop:

        * **plan-up-front** — every miss is rewritten and planned
          sequentially first; only execution fans out;
        * **one shared scan memo** — a
          :class:`~repro.engine.operators.SharedScanMemo` spans the
          batch, so a subplan (an index scan, a join subtree) appearing
          under any number of queries is computed exactly once;
        * **key-level dedup** — queries with identical cache keys share
          one execution and one :class:`QueryResult` object.

        ``workers > 1`` executes independent plans on a thread pool
        (answers are unaffected; under CPython's GIL the speedup is
        bounded by the numpy/C share of the work).  Results come back
        in input order.
        """
        parsed = [self._parse(query) for query in queries]
        if not parsed:
            return []
        strategy = None if method in BASELINE_METHODS else Strategy.parse(method)
        if strategy is not None:
            self._ensure_built()
        with self._lock.read_locked():
            version = self.graph.version
            results: list[QueryResult | None] = [None] * len(parsed)
            slots: dict[tuple, list[int]] = {}
            for position, (text, _) in enumerate(parsed):
                key = self._cache_key(
                    text,
                    method,
                    strategy,
                    use_exact_statistics,
                    max_disjuncts,
                    version,
                )
                slots.setdefault(key, []).append(position)
            pending: list[tuple[tuple, str, Node]] = []
            for key, positions in slots.items():
                text, node = parsed[positions[0]]
                cached = self._cache_lookup(key, version) if use_cache else None
                if cached is not None:
                    for position in positions:
                        results[position] = cached
                else:
                    pending.append((key, text, node))
            if pending:
                for key, result in self._run_batch(
                    pending,
                    method,
                    strategy,
                    use_exact_statistics,
                    max_disjuncts,
                    version,
                    workers,
                ):
                    for position in slots[key]:
                        results[position] = result
                    if use_cache:
                        with self._cache_lock:
                            self._cache_misses += 1
                            self._remember_locked(key, result)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _run_batch(
        self,
        pending: list[tuple[tuple, str, Node]],
        method: str,
        strategy: Strategy | None,
        use_exact_statistics: bool,
        max_disjuncts: int,
        version: int,
        workers: int,
    ) -> list[tuple[tuple, QueryResult]]:
        """Execute the batch misses; caller holds the read lock."""
        if strategy is None:
            def run_one(item: tuple[tuple, str, Node]):
                key, text, node = item
                started = time.perf_counter()
                pairs = self._run_baseline(method, node)
                return key, QueryResult(
                    query=text,
                    method=method,
                    pairs=frozenset(self.graph.pairs_to_names(pairs)),
                    seconds=time.perf_counter() - started,
                    version=version,
                )

            items: list = pending
        else:
            index = self._require_index()
            statistics = (
                self._exact_statistics if use_exact_statistics else self._histogram
            )
            memo = SharedScanMemo()
            items = [
                (
                    key,
                    text,
                    prepare_ast(
                        node,
                        index,
                        self.graph,
                        statistics,
                        strategy,
                        max_disjuncts,
                    ),
                )
                for key, text, node in pending
            ]

            def run_one(item):
                key, text, prepared = item
                report = execute_prepared(
                    prepared, index, self.graph, statistics, memo
                )
                return key, QueryResult(
                    query=text,
                    method=strategy.value,
                    pairs=frozenset(self.graph.pairs_to_names(report.relation)),
                    seconds=report.total_seconds,
                    report=report,
                    version=version,
                )

        if workers > 1 and len(items) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(items))
            ) as pool:
                outcomes = list(pool.map(run_one, items))
        else:
            outcomes = [run_one(item) for item in items]
        if strategy is not None:
            # Aggregate the batch's memo traffic once, from the memo
            # itself (per-report deltas overlap under concurrency).
            # Scatter counters are per-execution objects, so their
            # per-report values sum exactly.
            with self._cache_lock:
                self._scan_memo_hits += memo.hits
                self._scan_memo_misses += memo.misses
                for _, outcome in outcomes:
                    if outcome.report is not None:
                        self._shards_scanned += outcome.report.shards_scanned
                        self._shards_pruned += outcome.report.shards_pruned
                        self._disjuncts_pruned += outcome.report.disjuncts_pruned
                        self._shards_replanned += outcome.report.shards_replanned
                        self._shards_failed += outcome.report.shards_failed
        return outcomes

    # -- prepared statements -------------------------------------------------------

    def prepare(
        self,
        template: str | Template,
        method: str = "minsupport",
        use_exact_statistics: bool = False,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ) -> PreparedStatement:
        """Plan a parameterized template once; bind and run it many times.

        ``template`` is RPQ text extended with ``$name`` placeholders
        for repetition bounds and an optional ``from(...):`` source
        anchor::

            statement = db.prepare("from($v): knows{1,$n}/worksFor")
            result = statement.bind(v="alice", n=3).run()

        Each distinct binding of the *bound* parameters is rewritten
        and planned exactly once per ``(graph version, statistics
        epoch)`` — subsequent ``run()`` calls skip parse/rewrite/plan
        entirely, and any mutation or rebuild soundly invalidates the
        cached plans.  The anchor never reaches the planner: it
        restricts the answer after execution, so every anchor value
        shares one plan.  On the disk backend, plans also persist to a
        fingerprinted artifact file next to the index, so a restarted
        service answers its first prepared query with zero planning
        calls (see ``artifact_loads`` in :meth:`cache_info`).

        Only the index strategies can be prepared — baselines have no
        plan to cache.
        """
        if isinstance(template, str):
            template = parse_template(template)
        elif not isinstance(template, Template):
            raise ValidationError(
                f"template must be text or a parsed Template, "
                f"got {type(template)}"
            )
        if method in BASELINE_METHODS:
            raise ValidationError(
                f"prepare() plans through the index strategies; baseline "
                f"{method!r} has no plan to cache — use query() instead"
            )
        return PreparedStatement(
            database=self,
            template=template,
            strategy=Strategy.parse(method),
            use_exact_statistics=use_exact_statistics,
            max_disjuncts=max_disjuncts,
        )

    def _run_prepared(self, bound: BoundStatement) -> QueryResult:
        """Execute one bound statement (the seam behind ``bound.run()``).

        Mirrors :meth:`_query_locked`'s read-section discipline: the
        (plan resolution, execution, answer naming) sequence runs as one
        reader section against one graph snapshot.  Prepared runs
        deliberately bypass the whole-answer LRU — the point of a
        prepared statement is that *execution* is the only repeated
        cost, and benchmarks comparing the two paths must not measure
        the result cache instead.
        """
        statement = bound.statement
        self._ensure_built()
        with self._lock.read_locked():
            version = self.graph.version
            epoch = self._statistics_epoch
            index = self._require_index()
            statistics = (
                self._exact_statistics
                if statement.use_exact_statistics
                else self._histogram
            )
            started = time.perf_counter()
            prepared = statement._plan_for(
                bound, version, epoch, index, statistics
            )
            report = execute_prepared(prepared, index, self.graph, statistics)
            relation = report.relation
            if bound.anchor is not None:
                relation = restrict_src(
                    relation, self.graph.node_id(bound.anchor)
                )
            result = QueryResult(
                query=bound.text,
                method=statement.strategy.value,
                pairs=frozenset(self.graph.pairs_to_names(relation)),
                seconds=time.perf_counter() - started,
                report=report,
                version=version,
            )
            with self._cache_lock:
                self._scan_memo_hits += report.scan_memo_hits
                self._scan_memo_misses += report.scan_memo_misses
                self._shards_scanned += report.shards_scanned
                self._shards_pruned += report.shards_pruned
                self._disjuncts_pruned += report.disjuncts_pruned
                self._shards_replanned += report.shards_replanned
                self._shards_failed += report.shards_failed
            return result

    def _note_prepared(
        self,
        hits: int = 0,
        misses: int = 0,
        invalidations: int = 0,
        artifact_loads: int = 0,
        plans_computed: int = 0,
    ) -> None:
        """Bump prepared-statement counters under the cache mutex."""
        with self._cache_lock:
            self._prepared_hits += hits
            self._prepared_misses += misses
            self._prepared_invalidations += invalidations
            self._artifact_loads += artifact_loads
            self._plans_computed += plans_computed

    def _plan_fingerprint(self) -> str:
        """Content fingerprint of everything a cached plan depends on.

        Hashes ``k``, the histogram resolution, the alphabet, the node
        count (it bounds star rewrites), ``|paths_k(G)|`` and the exact
        per-path catalog counts — any change to any of them yields a
        different fingerprint, and the artifact store drops entries
        saved under the old one.  Deliberately *excludes* the shard
        count: plans are shard-layout independent (scatter planning
        happens at execution time), so re-sharding keeps the artifacts.
        """
        statistics = self._exact_statistics
        assert statistics is not None  # caller just installed it
        payload = json.dumps(
            [
                self.k,
                self._histogram_buckets,
                sorted(self.graph.labels()),
                self.graph.node_count,
                statistics.total_paths_k,
                sorted(statistics.counts.items()),
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _remember(self, key: tuple, result: QueryResult) -> None:
        with self._cache_lock:
            self._remember_locked(key, result)

    def _remember_locked(self, key: tuple, result: QueryResult) -> None:
        if self._query_cache_size == 0:
            return
        if result.report is not None and result.report.partial:
            # A degraded answer is a subset of the true answer, not the
            # answer — caching it would serve incomplete pairs to later
            # strict queries under the same key.
            return
        size = len(result.pairs)
        if size > self._query_cache_max_pairs:
            return  # one answer would blow the whole memory budget
        replaced = self._query_cache.pop(key, None)
        if replaced is not None:
            self._cached_pairs -= len(replaced.pairs)
        if result.report is not None:
            # Drop the execution report before pinning: it holds the
            # columnar id relation (and a memoized id-pair frozenset),
            # which would triple the real footprint the pairs budget
            # accounts for.  Reports are per-execution diagnostics;
            # cache hits return report=None.
            result = replace(result, report=None)
        self._query_cache[key] = result
        self._cached_pairs += size
        while (
            len(self._query_cache) > self._query_cache_size
            or self._cached_pairs > self._query_cache_max_pairs
        ):
            _, evicted = self._query_cache.popitem(last=False)
            self._cached_pairs -= len(evicted.pairs)

    def stats(self) -> EngineStats:
        """One consistent snapshot of every engine counter, grouped.

        ``stats().cache`` is the whole-answer LRU query cache plus the
        executor's per-execution scan memo (index scans and shared
        subplans reused across union disjuncts and batches), aggregated
        over every executed query.  ``stats().scatter`` aggregates the
        sharded engine's scatter-planning decisions — shard executions
        run, shard executions skipped whole, individual disjunct slices
        skipped as provably empty, and disjunct spines re-planned
        against per-shard statistics (all zero on the unsharded
        engine).  ``stats().faults.shards_failed`` counts shard slices
        dropped by ``query(degraded=True)`` — nonzero means some
        answers were served partial.  ``stats().prepared`` counts
        per-binding plan-cache traffic across every :meth:`prepare`\\ d
        statement, plans revived from the persistent artifact store,
        and actual planner invocations — a freshly restarted
        disk-backed service that answers prepared queries purely from
        artifacts shows ``plans_computed == 0``.

        The serve layer returns this verbatim at ``GET /stats``.
        """
        with self._cache_lock:
            return EngineStats(
                cache=CacheStats(
                    hits=self._cache_hits,
                    misses=self._cache_misses,
                    entries=len(self._query_cache),
                    capacity=self._query_cache_size,
                    pairs=self._cached_pairs,
                    max_pairs=self._query_cache_max_pairs,
                    scan_memo_hits=self._scan_memo_hits,
                    scan_memo_misses=self._scan_memo_misses,
                ),
                scatter=ScatterStats(
                    shards_scanned=self._shards_scanned,
                    shards_pruned=self._shards_pruned,
                    disjuncts_pruned=self._disjuncts_pruned,
                    shards_replanned=self._shards_replanned,
                ),
                prepared=PreparedStats(
                    hits=self._prepared_hits,
                    misses=self._prepared_misses,
                    invalidations=self._prepared_invalidations,
                    artifact_loads=self._artifact_loads,
                    plans_computed=self._plans_computed,
                    plan_artifacts=self._plan_store.entry_count(),
                ),
                faults=FaultStats(shards_failed=self._shards_failed),
                write=WriteStats(
                    groups=self._committer.groups,
                    coalesced=self._committer.coalesced,
                    patched=self._write_patched,
                    rebuilt=self._write_rebuilt,
                    log_records=(
                        self._mutation_log.last_seq
                        if self._mutation_log is not None
                        else 0
                    ),
                    replayed=self._replayed_batches,
                ),
            )

    def cache_info(self) -> dict[str, int]:
        """Deprecated: the counters of :meth:`stats` as the flat dict.

        Use :meth:`stats` (grouped) or ``stats().as_dict()`` (the same
        flat mapping this returns).
        """
        warnings.warn(
            "cache_info() is deprecated; use stats() "
            "(or stats().as_dict() for the flat mapping)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats().as_dict()

    def cache_clear(self) -> None:
        """Drop every cached query answer (counters are kept)."""
        with self._cache_lock:
            self._cache_clear_locked()

    def _cache_clear_locked(self) -> None:
        self._query_cache.clear()
        self._cached_pairs = 0

    def explain(
        self,
        query: str | Node,
        method: str = "minsupport",
        use_exact_statistics: bool = False,
    ) -> str:
        """The physical plan for a (bounded) query, as text."""
        _, node = self._parse(query)
        strategy = Strategy.parse(method)
        statistics = (
            self.exact_statistics if use_exact_statistics else self.histogram
        )
        normal_form = self.normal_form(node)
        planner = Planner(self.k, statistics, self.graph, strategy)
        costed = planner.plan(normal_form)
        header = (
            f"query: {node}\n"
            f"strategy: {strategy.value}   k: {self.k}\n"
            f"disjuncts: {normal_form.disjunct_count}   "
            f"est. cost: {costed.cost:.1f}   est. rows: {costed.cardinality:.1f}\n"
        )
        return header + render(costed.plan)

    def normal_form(self, query: str | Node) -> NormalForm:
        """Rewrite a query to the planner's union-of-paths normal form."""
        _, node = self._parse(query)
        return normalize(node, star_bound(self.graph))

    def query_from(
        self,
        source: str,
        query: str | Node,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ) -> frozenset[str]:
        """All nodes reachable from ``source`` by the query.

        Answered with single-source index lookups (``I(p, a)`` prefix
        scans, Example 3.1), so only the source's neighborhood is
        touched rather than the full relation.
        """
        from repro.engine.navigation import evaluate_from

        _, node = self._parse(query)
        source_id = self.graph.node_id(source)
        targets = evaluate_from(
            node,
            source_id,
            self.index,
            self.graph,
            self.histogram,
            max_disjuncts,
        )
        return frozenset(self.graph.node_name(t) for t in targets)

    def witness(self, source: str, target: str, query: str | Node):
        """A shortest concrete path justifying ``(source, target)``.

        Returns a :class:`repro.rpq.witness.Witness` or ``None`` when
        the pair is not in the answer.
        """
        from repro.rpq.witness import find_witness

        _, node = self._parse(query)
        self.graph.node_id(source)  # validate names early
        self.graph.node_id(target)
        return find_witness(self.graph, node, source, target)

    def query_pair(
        self,
        source: str,
        target: str,
        query: str | Node,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ) -> bool:
        """Boolean check: does (source, target) answer the query?

        Short disjuncts are single ``I(p, a, b)`` membership probes.
        """
        from repro.engine.navigation import evaluate_pair

        _, node = self._parse(query)
        return evaluate_pair(
            node,
            self.graph.node_id(source),
            self.graph.node_id(target),
            self.index,
            self.graph,
            self.histogram,
            max_disjuncts,
        )

    # -- internals ---------------------------------------------------------------------

    def _run_baseline(self, method: str, node: Node) -> set[tuple[int, int]]:
        if method == "automaton":
            return automaton_eval.evaluate(self.graph, node)
        if method == "dfa":
            from repro.rpq.dfa import evaluate as dfa_evaluate

            return dfa_evaluate(self.graph, node)
        if method == "datalog":
            return datalog_eval.evaluate(self.graph, node)
        if method == "reachability":
            return reachability_eval.evaluate(self.graph, node)
        return eval_ast(self.graph, node)

    def _parse(self, query: str | Node) -> tuple[str, Node]:
        if isinstance(query, str):
            return query, parse(query)
        if isinstance(query, Node):
            return str(query), query
        raise ValidationError(f"query must be text or an AST, got {type(query)}")

    def _parse_label_path(self, text: str) -> LabelPath:
        node = parse(text)
        normal = normalize(node, star_bound(self.graph))
        if normal.has_epsilon or len(normal.paths) != 1:
            raise ValidationError(f"{text!r} is not a single label path")
        return normal.paths[0]

    def close(self) -> None:
        """Release index resources (needed for the disk backend)."""
        if self._index is not None:
            self._index.close()
        if self._mutation_log is not None:
            self._mutation_log.close()

    def __enter__(self) -> "GraphDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        sharding = f", shards={self._shards}" if self._shards > 1 else ""
        return (
            f"GraphDatabase(nodes={self.graph.node_count}, "
            f"edges={self.graph.edge_count}, k={self.k}, "
            f"backend={self._backend!r}{sharding})"
        )
