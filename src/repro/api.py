"""The public API: :class:`GraphDatabase`.

A facade tying the substrates together in the life-of-a-query order the
paper demonstrates: load a graph, build the k-path index and its
histogram, then parse / rewrite / plan / execute queries with any of
the four strategies — or with one of the three literature baselines.

Example
-------
>>> from repro.api import GraphDatabase
>>> from repro.graph.examples import FIGURE1_EDGES
>>> db = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
>>> result = db.query("supervisor/^worksFor")
>>> sorted(result.pairs)
[('kim', 'sue')]
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

from repro.baselines import automaton_eval, datalog_eval, reachability_eval
from repro.engine.executor import ExecutionReport, evaluate_ast
from repro.engine.plan import render
from repro.engine.planner import Planner, Strategy
from repro.errors import ValidationError
from repro.graph.graph import Graph, LabelPath
from repro.graph.io import load_csv, load_edgelist, load_json
from repro.graph.stats import GraphSummary, star_bound, summarize
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics
from repro.rpq.ast import Node
from repro.rpq.parser import parse
from repro.rpq.rewrite import DEFAULT_MAX_DISJUNCTS, NormalForm, normalize
from repro.rpq.semantics import eval_ast

#: Methods accepted by :meth:`GraphDatabase.query`: the paper's four
#: index strategies plus the literature baselines (NFA and DFA product
#: search, Datalog, reachability) and the reference evaluator.
BASELINE_METHODS = ("automaton", "dfa", "datalog", "reachability", "reference")


@dataclass(frozen=True, slots=True)
class QueryResult:
    """The answer to one query plus how it was obtained."""

    query: str
    method: str
    pairs: frozenset[tuple[str, str]]
    seconds: float
    report: ExecutionReport | None = None
    cached: bool = False

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self.pairs


class GraphDatabase:
    """An RPQ-queryable graph with a k-path index and histogram."""

    def __init__(
        self,
        graph: Graph,
        k: int = 2,
        backend: str = "memory",
        index_path: str | Path | None = None,
        histogram_buckets: int = 64,
        build: bool = True,
        query_cache_size: int = 128,
        query_cache_max_pairs: int = 1_000_000,
    ):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        self._backend = backend
        self._index_path = index_path
        self._histogram_buckets = histogram_buckets
        self._index: PathIndex | None = None
        self._histogram: EquiDepthHistogram | None = None
        self._exact_statistics: ExactStatistics | None = None
        # LRU cache over fully answered queries, keyed on
        # (query, method, statistics flavor, disjunct budget, graph
        # version) so graph mutations can never serve stale answers;
        # build_index() additionally clears it wholesale.  Bounded both
        # by entry count and by total cached answer pairs, so a run of
        # huge answers cannot pin unbounded memory.
        self._query_cache: OrderedDict[tuple, QueryResult] = OrderedDict()
        self._query_cache_size = max(0, query_cache_size)
        self._query_cache_max_pairs = max(0, query_cache_max_pairs)
        self._cached_pairs = 0
        self._cache_version = graph.version
        self._cache_hits = 0
        self._cache_misses = 0
        # Aggregated executor scan-memo traffic (per-execution memo of
        # index scans / shared subplans), summed over every query that
        # actually executed through the engine.
        self._scan_memo_hits = 0
        self._scan_memo_misses = 0
        if build:
            self.build_index()

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[str, str, str]], k: int = 2, **kwargs
    ) -> "GraphDatabase":
        """Build from ``(source, label, target)`` triples."""
        return cls(Graph.from_edges(edges), k=k, **kwargs)

    @classmethod
    def from_file(cls, path: str | Path, k: int = 2, **kwargs) -> "GraphDatabase":
        """Load a graph file by extension (.tsv/.txt, .json, .csv)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix in (".tsv", ".txt", ".edgelist"):
            graph = load_edgelist(path)
        elif suffix == ".json":
            graph = load_json(path)
        elif suffix == ".csv":
            graph = load_csv(path)
        else:
            raise ValidationError(f"unrecognized graph file extension: {path}")
        return cls(graph, k=k, **kwargs)

    # -- index & statistics ----------------------------------------------------------

    def build_index(self) -> PathIndex:
        """(Re)build the k-path index and both statistics providers.

        Invalidates the query cache: any cached answer may predate the
        graph state this index now reflects.
        """
        self.cache_clear()
        self._index = PathIndex.build(
            self.graph, self.k, backend=self._backend, path=self._index_path
        )
        self._exact_statistics = ExactStatistics.from_index(self._index, self.graph)
        self._histogram = EquiDepthHistogram.from_counts(
            self._index.counts_by_path(),
            k=self.k,
            total_paths_k=self._exact_statistics.total_paths_k,
            buckets=self._histogram_buckets,
        )
        return self._index

    @property
    def index(self) -> PathIndex:
        """The k-path index (building it on first use if needed)."""
        if self._index is None:
            self.build_index()
        assert self._index is not None
        return self._index

    @property
    def histogram(self) -> EquiDepthHistogram:
        """The equi-depth histogram ``sel_{G,k}``."""
        if self._histogram is None:
            self.build_index()
        assert self._histogram is not None
        return self._histogram

    @property
    def exact_statistics(self) -> ExactStatistics:
        """Exact per-path statistics (ablation alternative)."""
        if self._exact_statistics is None:
            self.build_index()
        assert self._exact_statistics is not None
        return self._exact_statistics

    def selectivity(self, path_text: str) -> float:
        """Histogram estimate of ``sel_{G,k}`` for a label path.

        ``path_text`` uses step syntax: ``knows/knows/worksFor`` or
        ``knows/^worksFor``.
        """
        path = self._parse_label_path(path_text)
        return self.histogram.selectivity(path)

    def summary(self) -> GraphSummary:
        """Graph-level statistics (size, labels, degrees)."""
        return summarize(self.graph)

    # -- queries -------------------------------------------------------------------------

    def query(
        self,
        query: str | Node,
        method: str = "minsupport",
        use_exact_statistics: bool = False,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
        use_cache: bool = True,
    ) -> QueryResult:
        """Answer an RPQ.

        ``method`` is one of the paper's strategies (``naive``,
        ``semi-naive``, ``minsupport``, ``minjoin``) or a baseline
        (``automaton``, ``datalog``, ``reachability``, ``reference``).

        Repeated queries are answered from an LRU cache keyed on
        ``(query, method, graph version)`` — heavy-traffic workloads
        skip the rewrite/plan/execute pipeline entirely.  The cache is
        invalidated by :meth:`build_index` and bypassed automatically
        after any graph mutation (the graph's version is part of the
        key), so stale answers are never served.  Cache hits carry
        ``cached=True``, ``seconds=0.0`` and ``report=None`` (reports
        are per-execution diagnostics and are not retained).
        ``use_cache=False`` bypasses the cache entirely — no lookup,
        no store, no counter updates — which is what the benchmark
        harness wants.
        """
        text, node = self._parse(query)
        if method in BASELINE_METHODS:
            # Baselines ignore statistics flavor and disjunct budget;
            # keep them out of the key so identical answers share one
            # entry (and one slot of the pairs budget).
            cache_key = (text, method, self.graph.version)
        else:
            cache_key = (
                text, method, use_exact_statistics, max_disjuncts,
                self.graph.version,
            )
        if use_cache:
            if self._cache_version != self.graph.version:
                # The version only grows, so every entry keyed on an
                # older version is dead forever — drop them rather than
                # letting garbage pin the entry/pairs budgets.
                self.cache_clear()
                self._cache_version = self.graph.version
            cached = self._query_cache.get(cache_key)
            if cached is not None:
                self._query_cache.move_to_end(cache_key)
                self._cache_hits += 1
                return replace(cached, seconds=0.0, cached=True)
        started = time.perf_counter()
        if method in BASELINE_METHODS:
            pairs = self._run_baseline(method, node)
            seconds = time.perf_counter() - started
            result = QueryResult(
                query=text,
                method=method,
                pairs=frozenset(self.graph.pairs_to_names(pairs)),
                seconds=seconds,
            )
        else:
            strategy = Strategy.parse(method)
            statistics = (
                self.exact_statistics if use_exact_statistics else self.histogram
            )
            report = evaluate_ast(
                node, self.index, self.graph, statistics, strategy, max_disjuncts
            )
            self._scan_memo_hits += report.scan_memo_hits
            self._scan_memo_misses += report.scan_memo_misses
            seconds = time.perf_counter() - started
            result = QueryResult(
                query=text,
                method=strategy.value,
                pairs=frozenset(self.graph.pairs_to_names(report.relation)),
                seconds=seconds,
                report=report,
            )
        if use_cache:
            # Count the miss only for queries that actually executed —
            # a raising method name must not skew hit-rate monitoring.
            self._cache_misses += 1
            self._remember(cache_key, result)
        return result

    def _remember(self, key: tuple, result: QueryResult) -> None:
        if self._query_cache_size == 0:
            return
        size = len(result.pairs)
        if size > self._query_cache_max_pairs:
            return  # one answer would blow the whole memory budget
        replaced = self._query_cache.pop(key, None)
        if replaced is not None:
            self._cached_pairs -= len(replaced.pairs)
        if result.report is not None:
            # Drop the execution report before pinning: it holds the
            # columnar id relation (and a memoized id-pair frozenset),
            # which would triple the real footprint the pairs budget
            # accounts for.  Reports are per-execution diagnostics;
            # cache hits return report=None.
            result = replace(result, report=None)
        self._query_cache[key] = result
        self._cached_pairs += size
        while (
            len(self._query_cache) > self._query_cache_size
            or self._cached_pairs > self._query_cache_max_pairs
        ):
            _, evicted = self._query_cache.popitem(last=False)
            self._cached_pairs -= len(evicted.pairs)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the caching layers (for monitoring).

        ``hits``/``misses`` are the whole-answer LRU query cache;
        ``scan_memo_hits``/``scan_memo_misses`` aggregate the executor's
        per-execution scan memo (index scans and shared subplans reused
        across union disjuncts) over every executed query.
        """
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "entries": len(self._query_cache),
            "capacity": self._query_cache_size,
            "pairs": self._cached_pairs,
            "max_pairs": self._query_cache_max_pairs,
            "scan_memo_hits": self._scan_memo_hits,
            "scan_memo_misses": self._scan_memo_misses,
        }

    def cache_clear(self) -> None:
        """Drop every cached query answer (counters are kept)."""
        self._query_cache.clear()
        self._cached_pairs = 0

    def explain(
        self,
        query: str | Node,
        method: str = "minsupport",
        use_exact_statistics: bool = False,
    ) -> str:
        """The physical plan for a (bounded) query, as text."""
        _, node = self._parse(query)
        strategy = Strategy.parse(method)
        statistics = (
            self.exact_statistics if use_exact_statistics else self.histogram
        )
        normal_form = self.normal_form(node)
        planner = Planner(self.k, statistics, self.graph, strategy)
        costed = planner.plan(normal_form)
        header = (
            f"query: {node}\n"
            f"strategy: {strategy.value}   k: {self.k}\n"
            f"disjuncts: {normal_form.disjunct_count}   "
            f"est. cost: {costed.cost:.1f}   est. rows: {costed.cardinality:.1f}\n"
        )
        return header + render(costed.plan)

    def normal_form(self, query: str | Node) -> NormalForm:
        """Rewrite a query to the planner's union-of-paths normal form."""
        _, node = self._parse(query)
        return normalize(node, star_bound(self.graph))

    def query_from(
        self,
        source: str,
        query: str | Node,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ) -> frozenset[str]:
        """All nodes reachable from ``source`` by the query.

        Answered with single-source index lookups (``I(p, a)`` prefix
        scans, Example 3.1), so only the source's neighborhood is
        touched rather than the full relation.
        """
        from repro.engine.navigation import evaluate_from

        _, node = self._parse(query)
        source_id = self.graph.node_id(source)
        targets = evaluate_from(
            node, source_id, self.index, self.graph, self.histogram,
            max_disjuncts,
        )
        return frozenset(self.graph.node_name(t) for t in targets)

    def witness(self, source: str, target: str, query: str | Node):
        """A shortest concrete path justifying ``(source, target)``.

        Returns a :class:`repro.rpq.witness.Witness` or ``None`` when
        the pair is not in the answer.
        """
        from repro.rpq.witness import find_witness

        _, node = self._parse(query)
        self.graph.node_id(source)  # validate names early
        self.graph.node_id(target)
        return find_witness(self.graph, node, source, target)

    def query_pair(
        self,
        source: str,
        target: str,
        query: str | Node,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ) -> bool:
        """Boolean check: does (source, target) answer the query?

        Short disjuncts are single ``I(p, a, b)`` membership probes.
        """
        from repro.engine.navigation import evaluate_pair

        _, node = self._parse(query)
        return evaluate_pair(
            node,
            self.graph.node_id(source),
            self.graph.node_id(target),
            self.index,
            self.graph,
            self.histogram,
            max_disjuncts,
        )

    # -- internals ------------------------------------------------------------------------

    def _run_baseline(self, method: str, node: Node) -> set[tuple[int, int]]:
        if method == "automaton":
            return automaton_eval.evaluate(self.graph, node)
        if method == "dfa":
            from repro.rpq.dfa import evaluate as dfa_evaluate

            return dfa_evaluate(self.graph, node)
        if method == "datalog":
            return datalog_eval.evaluate(self.graph, node)
        if method == "reachability":
            return reachability_eval.evaluate(self.graph, node)
        return eval_ast(self.graph, node)

    def _parse(self, query: str | Node) -> tuple[str, Node]:
        if isinstance(query, str):
            return query, parse(query)
        if isinstance(query, Node):
            return str(query), query
        raise ValidationError(f"query must be text or an AST, got {type(query)}")

    def _parse_label_path(self, text: str) -> LabelPath:
        node = parse(text)
        normal = normalize(node, star_bound(self.graph))
        if normal.has_epsilon or len(normal.paths) != 1:
            raise ValidationError(f"{text!r} is not a single label path")
        return normal.paths[0]

    def close(self) -> None:
        """Release index resources (needed for the disk backend)."""
        if self._index is not None:
            self._index.close()

    def __enter__(self) -> "GraphDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"GraphDatabase(nodes={self.graph.node_count}, "
            f"edges={self.graph.edge_count}, k={self.k}, "
            f"backend={self._backend!r})"
        )
