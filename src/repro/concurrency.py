"""Thread-coordination primitives for the query service layer.

The serving story of the paper — a k-path index cheap enough to answer
"heavy traffic" directly — needs the :class:`repro.api.GraphDatabase`
facade to survive concurrent readers and writers.  CPython's GIL keeps
individual bytecodes atomic but nothing larger: an ``OrderedDict`` LRU
being reordered by one thread while another evicts from it, or a query
computing its cache key against one graph version and reading the index
of another, are real interleavings, not theoretical ones.

This module provides the one primitive the facade needs:

* :class:`ReadWriteLock` — a writer-preferring shared/exclusive lock.
  Any number of queries (readers) proceed concurrently; a mutation or
  index rebuild (writer) waits for in-flight readers, blocks new ones,
  and runs alone.  Writer preference keeps a steady stream of queries
  from starving mutations.

The lock is deliberately *not* reentrant: the facade resolves lazy
state (``_ensure_built``) before entering a read section, so no code
path ever acquires the lock twice on one thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A shared (read) / exclusive (write) lock, writer-preferring.

    ``read_locked()`` sections run concurrently with each other;
    ``write_locked()`` sections run alone.  Once a writer is waiting,
    new readers queue behind it, so writers cannot be starved by a
    continuous reader stream.

    Invariant (machine-checked by ``repro lint``, rule
    ``lock-discipline``): guarded ``GraphDatabase`` state is only
    written inside ``write_locked()``/``_cache_lock`` sections or
    ``*_locked`` methods, and nothing mutates under a read lock.
    """

    __slots__ = ("_condition", "_active_readers", "_writer_active", "_writers_waiting")

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- reader side ----------------------------------------------------

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager for a shared section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side ----------------------------------------------------

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager for an exclusive section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"ReadWriteLock(readers={self._active_readers}, "
            f"writer={self._writer_active}, "
            f"waiting={self._writers_waiting})"
        )
