"""Small example graphs, including a reconstruction of the paper's Figure 1.

The exact 16-edge list of the paper's ``Gex`` exists only in the figure
artwork; the running text pins down the node set, the vocabulary, the
label multiset (9 ``knows``, 6 ``worksFor``, 1 ``supervisor``) and a few
query answers.  :func:`figure1_graph` is a hand-built graph honoring the
reconstructible constraints:

* nodes ``{sue, liz, joe, zoe, sam, tim, kim, ada, jan}``;
* 9 ``knows`` + 6 ``worksFor`` + 1 ``supervisor`` edges;
* ``supervisor ∘ worksFor⁻`` evaluates to exactly ``{(kim, sue)}``;
* ``supervisor ∘ knows`` contains exactly one pair (the paper's
  selectivity example);
* ``(sam, ada)`` is in ``paths_2`` but not ``paths_1``, with the two
  witness paths through ``zoe`` the paper names.

The precise edge placements beyond those constraints are ours; all
correctness tests treat the reference evaluator, not this graph, as the
oracle.
"""

from __future__ import annotations

from repro.graph.graph import Graph

FIGURE1_EDGES: tuple[tuple[str, str, str], ...] = (
    # knows (9 edges)
    ("ada", "knows", "zoe"),
    ("zoe", "knows", "sam"),
    ("sue", "knows", "zoe"),
    ("kim", "knows", "sue"),
    ("liz", "knows", "joe"),
    ("jan", "knows", "joe"),
    ("joe", "knows", "tim"),
    ("tim", "knows", "jan"),
    ("sam", "knows", "tim"),
    # worksFor (6 edges)
    ("sue", "worksFor", "liz"),
    ("zoe", "worksFor", "ada"),
    ("jan", "worksFor", "kim"),
    ("tim", "worksFor", "kim"),
    ("joe", "worksFor", "ada"),
    ("sam", "worksFor", "kim"),
    # supervisor (1 edge)
    ("kim", "supervisor", "liz"),
)


def figure1_graph() -> Graph:
    """The reconstruction of the paper's example graph ``Gex``."""
    return Graph.from_edges(FIGURE1_EDGES)


def two_triangles() -> Graph:
    """Two label-disjoint directed triangles sharing one node.

    A minimal graph where composition across labels, inverses and
    2-bounded recursion all have small, hand-checkable answers.
    """
    return Graph.from_edges(
        [
            ("a", "red", "b"),
            ("b", "red", "c"),
            ("c", "red", "a"),
            ("a", "blue", "x"),
            ("x", "blue", "y"),
            ("y", "blue", "a"),
        ]
    )


def diamond() -> Graph:
    """A diamond: two length-2 routes from ``s`` to ``t``.

    Exercises duplicate elimination: ``hop/hop`` has one answer pair
    with two witness paths.
    """
    return Graph.from_edges(
        [
            ("s", "hop", "l"),
            ("s", "hop", "r"),
            ("l", "hop", "t"),
            ("r", "hop", "t"),
        ]
    )


def self_loop() -> Graph:
    """One node with a self-loop; recursion fixpoints terminate here."""
    graph = Graph()
    graph.add_edge("o", "spin", "o")
    return graph
