"""Graph transformations: subgraphs, reversal, relabeling, merging.

Utilities a downstream user of the library needs when preparing data
for indexing (e.g. restricting a large network to a neighborhood, or
canonicalizing label names before building ``I_{G,k}``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.errors import ValidationError
from repro.graph.graph import Graph


def induced_subgraph(graph: Graph, nodes: Iterable[str]) -> Graph:
    """The subgraph on ``nodes``: kept nodes plus edges between them."""
    keep = set(nodes)
    unknown = [name for name in keep if not graph.has_node(name)]
    if unknown:
        raise ValidationError(f"unknown nodes: {sorted(unknown)[:5]}")
    result = Graph()
    for name in sorted(keep):
        result.add_node(name)
    for source, label, target in graph.edges():
        if source in keep and target in keep:
            result.add_edge(source, label, target)
    return result


def neighborhood(graph: Graph, center: str, radius: int) -> Graph:
    """The induced subgraph of everything within undirected ``radius``.

    Matches the paper's *localized* view: the k-path index only ever
    sees pairs within i-path distance k, so indexing a radius-limited
    neighborhood answers all queries that stay inside it.
    """
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    center_id = graph.node_id(center)
    seen = {center_id}
    frontier = deque([(center_id, 0)])
    while frontier:
        node, depth = frontier.popleft()
        if depth == radius:
            continue
        for neighbor in graph.undirected_neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, depth + 1))
    return induced_subgraph(graph, (graph.node_name(n) for n in seen))


def reverse(graph: Graph) -> Graph:
    """Every edge flipped; labels preserved.

    ``R(reverse(G)) == (^R)(G)`` with sources/targets exchanged — a
    useful identity for testing inverse handling.
    """
    result = Graph()
    for name in graph.node_names():
        result.add_node(name)
    for source, label, target in graph.edges():
        result.add_edge(target, label, source)
    return result


def relabel(graph: Graph, mapping: dict[str, str] | Callable[[str], str]) -> Graph:
    """Rename edge labels; merging labels (n-to-1 maps) is allowed."""
    if isinstance(mapping, dict):
        missing = set(graph.labels()) - set(mapping)
        if missing:
            raise ValidationError(
                f"mapping lacks labels: {sorted(missing)}"
            )
        translate = mapping.__getitem__
    else:
        translate = mapping
    result = Graph()
    for name in graph.node_names():
        result.add_node(name)
    for source, label, target in graph.edges():
        result.add_edge(source, translate(label), target)
    return result


def merge(first: Graph, second: Graph) -> Graph:
    """The union of two graphs (shared node names are identified)."""
    result = Graph()
    for graph in (first, second):
        for name in graph.node_names():
            result.add_node(name)
        for edge in graph.edges():
            result.add_edge(*edge)
    return result


def drop_labels(graph: Graph, labels: Iterable[str]) -> Graph:
    """Remove every edge carrying one of ``labels`` (nodes are kept)."""
    dropped = set(labels)
    result = Graph()
    for name in graph.node_names():
        result.add_node(name)
    for source, label, target in graph.edges():
        if label not in dropped:
            result.add_edge(source, label, target)
    return result


def largest_connected_component(graph: Graph) -> Graph:
    """The induced subgraph of the largest *undirected* component."""
    unvisited = set(graph.node_ids())
    best: set[int] = set()
    while unvisited:
        start = next(iter(unvisited))
        component = {start}
        frontier = deque([start])
        unvisited.discard(start)
        while frontier:
            node = frontier.popleft()
            for neighbor in graph.undirected_neighbors(node):
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    component.add(neighbor)
                    frontier.append(neighbor)
        if len(component) > len(best):
            best = component
    return induced_subgraph(graph, (graph.node_name(n) for n in best))
