"""Graph data model, I/O, generators and statistics."""

from repro.graph.graph import Graph, LabelPath, Step
from repro.graph import examples, generators, io, stats

__all__ = ["Graph", "LabelPath", "Step", "examples", "generators", "io", "stats"]
