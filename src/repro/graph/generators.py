"""Synthetic graph generators.

The paper evaluates on the Advogato trust network (6,541 nodes, 51,127
edges, three trust labels).  That dataset is not redistributable here,
so :func:`advogato_like` generates a *seeded synthetic stand-in* with
the two structural properties the evaluation depends on:

* a heavy-tailed (preferential-attachment) degree distribution, and
* a small label alphabet with skewed label frequencies
  (Advogato's ``master`` / ``journeyer`` / ``apprentice`` certifications).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ValidationError
from repro.graph.graph import Graph

#: Advogato's three certification levels and their approximate share of
#: edges in the real dataset (apprentice is rarest, journeyer most common).
ADVOGATO_LABELS: tuple[str, ...] = ("master", "journeyer", "apprentice")
ADVOGATO_LABEL_WEIGHTS: tuple[float, ...] = (0.30, 0.47, 0.23)

#: Real Advogato dimensions, for callers who want the full-size graph.
ADVOGATO_NODES = 6541
ADVOGATO_EDGES = 51127


def _node_name(index: int) -> str:
    return f"n{index}"


def _check_sizes(nodes: int, edges: int) -> None:
    if nodes <= 0:
        raise ValidationError(f"nodes must be positive, got {nodes}")
    if edges < 0:
        raise ValidationError(f"edges must be non-negative, got {edges}")


def _pick_labels(
    rng: random.Random,
    labels: Sequence[str],
    weights: Sequence[float] | None,
    count: int,
) -> list[str]:
    if not labels:
        raise ValidationError("at least one label is required")
    if weights is not None and len(weights) != len(labels):
        raise ValidationError("weights must parallel labels")
    return rng.choices(list(labels), weights=weights, k=count)


def advogato_like(
    nodes: int = 1000,
    edges: int = 8000,
    labels: Sequence[str] = ADVOGATO_LABELS,
    label_weights: Sequence[float] | None = ADVOGATO_LABEL_WEIGHTS,
    seed: int = 7,
) -> Graph:
    """A directed preferential-attachment graph with skewed labels.

    The default size (1,000 nodes / 8,000 edges) is a scaled-down
    Advogato so that a pure-Python k=3 index build finishes in seconds;
    pass ``nodes=ADVOGATO_NODES, edges=ADVOGATO_EDGES`` for full size.

    Construction: nodes arrive one at a time; each new node emits edges
    whose targets are drawn from a repeated-endpoints urn (classic
    Barabási–Albert preferential attachment), giving a heavy-tailed
    in-degree distribution like a real trust network.  A fraction of
    edges is rewired uniformly at random to keep the graph from being
    a pure DAG of arrival order.
    """
    _check_sizes(nodes, edges)
    rng = random.Random(seed)
    graph = Graph()
    for index in range(nodes):
        graph.add_node(_node_name(index))

    urn: list[int] = [0]
    edge_labels = _pick_labels(rng, labels, label_weights, edges)
    per_node = max(1, edges // max(nodes - 1, 1))
    made = 0
    attempts = 0
    max_attempts = edges * 20
    source_order: list[int] = list(range(1, nodes))
    while made < edges and attempts < max_attempts:
        attempts += 1
        if made // per_node < len(source_order):
            src = source_order[made // per_node]
        else:
            src = rng.randrange(nodes)
        if rng.random() < 0.15:
            tgt = rng.randrange(nodes)
        else:
            tgt = urn[rng.randrange(len(urn))]
        if tgt == src:
            continue
        label = edge_labels[made]
        if graph.add_edge(_node_name(src), label, _node_name(tgt)):
            urn.append(tgt)
            urn.append(src)
            made += 1
    return graph


def erdos_renyi(
    nodes: int,
    edges: int,
    labels: Sequence[str] = ("a", "b"),
    label_weights: Sequence[float] | None = None,
    seed: int = 7,
    allow_self_loops: bool = False,
) -> Graph:
    """A uniform random directed multigraph G(n, m) with labeled edges."""
    _check_sizes(nodes, edges)
    rng = random.Random(seed)
    graph = Graph()
    for index in range(nodes):
        graph.add_node(_node_name(index))
    edge_labels = _pick_labels(rng, labels, label_weights, edges)
    made = 0
    attempts = 0
    max_attempts = edges * 50 + 100
    while made < edges and attempts < max_attempts:
        attempts += 1
        src = rng.randrange(nodes)
        tgt = rng.randrange(nodes)
        if src == tgt and not allow_self_loops:
            continue
        if graph.add_edge(_node_name(src), edge_labels[made], _node_name(tgt)):
            made += 1
    return graph


def chain(length: int, label: str = "next") -> Graph:
    """A directed path ``n0 -> n1 -> ... -> n(length)`` (length edges)."""
    if length < 1:
        raise ValidationError("chain length must be >= 1")
    graph = Graph()
    for index in range(length):
        graph.add_edge(_node_name(index), label, _node_name(index + 1))
    return graph


def cycle(length: int, label: str = "next") -> Graph:
    """A directed cycle of ``length`` nodes."""
    if length < 2:
        raise ValidationError("cycle length must be >= 2")
    graph = Graph()
    for index in range(length):
        graph.add_edge(_node_name(index), label, _node_name((index + 1) % length))
    return graph


def star(leaves: int, label: str = "to", outward: bool = True) -> Graph:
    """A star: hub connected to ``leaves`` leaf nodes."""
    if leaves < 1:
        raise ValidationError("a star needs at least one leaf")
    graph = Graph()
    for index in range(1, leaves + 1):
        if outward:
            graph.add_edge("hub", label, _node_name(index))
        else:
            graph.add_edge(_node_name(index), label, "hub")
    return graph


def grid(width: int, height: int, right: str = "right", down: str = "down") -> Graph:
    """A width×height grid with ``right`` and ``down`` labeled edges.

    Useful for queries whose answers are exactly the monotone lattice
    paths; the count of ``right{i}/down{j}`` answers is predictable.
    """
    if width < 1 or height < 1:
        raise ValidationError("grid dimensions must be >= 1")
    graph = Graph()

    def name(x: int, y: int) -> str:
        return f"c{x}_{y}"

    for y in range(height):
        for x in range(width):
            graph.add_node(name(x, y))
            if x + 1 < width:
                graph.add_edge(name(x, y), right, name(x + 1, y))
            if y + 1 < height:
                graph.add_edge(name(x, y), down, name(x, y + 1))
    return graph


def complete_bipartite(
    left: int, right: int, label: str = "to"
) -> Graph:
    """All edges from ``left`` source nodes to ``right`` target nodes."""
    if left < 1 or right < 1:
        raise ValidationError("both sides of a bipartite graph must be >= 1")
    graph = Graph()
    for i in range(left):
        for j in range(right):
            graph.add_edge(f"l{i}", label, f"r{j}")
    return graph


def balanced_tree(branching: int, depth: int, label: str = "child") -> Graph:
    """A rooted tree where every internal node has ``branching`` children."""
    if branching < 1 or depth < 0:
        raise ValidationError("branching must be >= 1 and depth >= 0")
    graph = Graph()
    graph.add_node("t0")
    frontier = ["t0"]
    counter = 1
    for _ in range(depth):
        next_frontier: list[str] = []
        for parent in frontier:
            for _ in range(branching):
                child = f"t{counter}"
                counter += 1
                graph.add_edge(parent, label, child)
                next_frontier.append(child)
        frontier = next_frontier
    return graph


def layered_random(
    layers: int,
    width: int,
    labels: Sequence[str],
    density: float = 0.3,
    seed: int = 7,
) -> Graph:
    """A layered DAG: each consecutive layer pair gets random edges.

    Handy for benchmarks where concatenation length correlates with the
    number of layers a query must cross.
    """
    if layers < 2 or width < 1:
        raise ValidationError("need at least 2 layers of width >= 1")
    if not 0.0 <= density <= 1.0:
        raise ValidationError("density must be within [0, 1]")
    rng = random.Random(seed)
    graph = Graph()
    for layer in range(layers):
        for slot in range(width):
            graph.add_node(f"v{layer}_{slot}")
    label_list = list(labels)
    for layer in range(layers - 1):
        for src_slot in range(width):
            for tgt_slot in range(width):
                if rng.random() < density:
                    graph.add_edge(
                        f"v{layer}_{src_slot}",
                        rng.choice(label_list),
                        f"v{layer + 1}_{tgt_slot}",
                    )
    return graph
