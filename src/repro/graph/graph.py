"""Edge-labeled directed graphs: the paper's data model (Section 2.1).

A *graph over vocabulary L* assigns to every label ``l`` in ``L`` a finite
edge relation, i.e. a set of ordered node pairs.  Nodes are arbitrary
strings externally; internally they are interned to dense integer
identifiers so that relations, indexes and join operators work on plain
``(int, int)`` pairs.

The navigational unit of the whole library is the :class:`Step`: a label
together with a direction.  ``Step("knows")`` navigates a ``knows`` edge
forwards, ``Step("knows", inverse=True)`` navigates it backwards (the
paper writes this ``knows⁻``).  A :class:`LabelPath` is a non-empty
sequence of steps; these are the search keys of the k-path index.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import GraphError, UnknownNodeError, ValidationError

#: Labels must look like programming-language identifiers.  This keeps
#: the textual query syntax, the index key encoding and the Datalog
#: translation unambiguous.
_LABEL_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

#: Marker appended to a label in the compact textual form of an inverse
#: step, e.g. ``knows-``.  The parser also accepts the SPARQL-style
#: prefix form ``^knows``.
INVERSE_SUFFIX = "-"


def _check_label(label: str) -> str:
    if not isinstance(label, str) or _LABEL_RE.match(label) is None:
        raise ValidationError(
            f"invalid edge label {label!r}: labels must match "
            "[A-Za-z_][A-Za-z0-9_]*"
        )
    return label


@dataclass(frozen=True, slots=True)
class Step:
    """One navigation step: an edge label plus a direction.

    ``Step("knows")`` is the paper's ``knows``;
    ``Step("knows", inverse=True)`` is the paper's ``knows⁻``.
    """

    label: str
    inverse: bool = False

    def __post_init__(self) -> None:
        _check_label(self.label)

    def inverted(self) -> "Step":
        """The same edge navigated in the opposite direction."""
        return Step(self.label, not self.inverse)

    def encode(self) -> str:
        """Compact unambiguous textual form (``knows`` or ``knows-``)."""
        if self.inverse:
            return self.label + INVERSE_SUFFIX
        return self.label

    @staticmethod
    def decode(text: str) -> "Step":
        """Inverse of :meth:`encode`."""
        if text.endswith(INVERSE_SUFFIX):
            return Step(text[: -len(INVERSE_SUFFIX)], inverse=True)
        return Step(text)

    def __str__(self) -> str:
        if self.inverse:
            return "^" + self.label
        return self.label


class LabelPath:
    """A non-empty sequence of :class:`Step` objects.

    Label paths are the unit the planner manipulates (the "disjuncts"
    produced by union pull-up) and the first component of every k-path
    index key.  Instances are immutable and hashable.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[Step]):
        steps = tuple(steps)
        if not steps:
            raise ValidationError("a LabelPath must contain at least one step")
        for step in steps:
            if not isinstance(step, Step):
                raise ValidationError(f"not a Step: {step!r}")
        object.__setattr__(self, "steps", steps)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LabelPath is immutable")

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, item: int | slice) -> "Step | LabelPath":
        if isinstance(item, slice):
            return LabelPath(self.steps[item])
        return self.steps[item]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelPath):
            return NotImplemented
        return self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        return f"LabelPath({self.encode()!r})"

    def __str__(self) -> str:
        return "/".join(str(step) for step in self.steps)

    # -- algebra ---------------------------------------------------------

    def concat(self, other: "LabelPath") -> "LabelPath":
        """Path composition ``self ∘ other``."""
        return LabelPath(self.steps + other.steps)

    def inverted(self) -> "LabelPath":
        """The inverse path: steps reversed and each step flipped.

        Scanning the index on ``p.inverted()`` yields the relation of
        ``p`` with source and target exchanged — the trick the paper
        uses to obtain merge-join-compatible sort orders.
        """
        return LabelPath(step.inverted() for step in reversed(self.steps))

    def prefix(self, length: int) -> "LabelPath":
        """The first ``length`` steps (1 <= length <= len(self))."""
        return LabelPath(self.steps[:length])

    def subpath(self, start: int, stop: int) -> "LabelPath":
        """Steps ``start:stop`` as a new path (must be non-empty)."""
        return LabelPath(self.steps[start:stop])

    # -- encoding ---------------------------------------------------------

    def encode(self) -> str:
        """Dotted textual key form, e.g. ``knows.knows-.worksFor``."""
        return ".".join(step.encode() for step in self.steps)

    @staticmethod
    def decode(text: str) -> "LabelPath":
        """Inverse of :meth:`encode`."""
        if not text:
            raise ValidationError("empty label-path encoding")
        return LabelPath(Step.decode(part) for part in text.split("."))

    @staticmethod
    def of(*specs: str) -> "LabelPath":
        """Convenience constructor from step strings.

        >>> LabelPath.of("knows", "knows-", "worksFor").encode()
        'knows.knows-.worksFor'
        """
        return LabelPath(Step.decode(spec) for spec in specs)


class Graph:
    """A finite directed edge-labeled graph (the paper's data model).

    Nodes are externally strings and internally dense integers; all
    relation-level machinery (index, joins, evaluators) works on the
    integer identifiers for speed, and results are translated back to
    names at the API boundary.

    Example
    -------
    >>> g = Graph()
    >>> g.add_edge("ada", "knows", "zoe")
    True
    >>> g.add_edge("zoe", "worksFor", "ada")
    True
    >>> sorted(g.labels())
    ['knows', 'worksFor']
    >>> g.node_count, g.edge_count
    (2, 2)
    """

    __slots__ = (
        "_name_to_id", "_id_to_name", "_edges", "_out", "_in",
        "_edge_count", "_version",
    )

    def __init__(self) -> None:
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        # label -> set of (src, tgt) id pairs
        self._edges: dict[str, set[tuple[int, int]]] = {}
        # label -> src id -> ascending list of tgt ids (kept sorted on
        # every insert, so neighbor lookups stream in id order)
        self._out: dict[str, dict[int, list[int]]] = {}
        self._in: dict[str, dict[int, list[int]]] = {}
        self._edge_count = 0
        # Monotone mutation counter; caches key on it to detect staleness.
        self._version = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str, str]]) -> "Graph":
        """Build a graph from ``(source, label, target)`` triples."""
        graph = cls()
        for src, label, tgt in edges:
            graph.add_edge(src, label, tgt)
        return graph

    def add_node(self, name: str) -> int:
        """Intern ``name`` and return its integer identifier.

        Adding a node that already exists is a no-op.  Isolated nodes
        participate in identity (``eps``) query results.
        """
        if not isinstance(name, str) or not name:
            raise GraphError(f"node names must be non-empty strings, got {name!r}")
        node_id = self._name_to_id.get(name)
        if node_id is None:
            node_id = len(self._id_to_name)
            self._name_to_id[name] = node_id
            self._id_to_name.append(name)
            self._version += 1
        return node_id

    def add_edge(self, src: str, label: str, tgt: str) -> bool:
        """Add the edge ``src -label-> tgt``; return ``False`` if present."""
        _check_label(label)
        src_id = self.add_node(src)
        tgt_id = self.add_node(tgt)
        relation = self._edges.setdefault(label, set())
        pair = (src_id, tgt_id)
        if pair in relation:
            return False
        relation.add(pair)
        bisect.insort(
            self._out.setdefault(label, {}).setdefault(src_id, []), tgt_id
        )
        bisect.insort(
            self._in.setdefault(label, {}).setdefault(tgt_id, []), src_id
        )
        self._edge_count += 1
        self._version += 1
        return True

    def remove_edge(self, src: str, label: str, tgt: str) -> bool:
        """Remove the edge ``src -label-> tgt``; return ``False`` if absent.

        Owns the mutation invariants: adjacency lists stay sorted (a
        positional remove preserves order), :attr:`version` is bumped,
        so version-keyed caches can never serve pre-deletion answers,
        and emptied containers are pruned — removing a label's last
        edge removes the label from :meth:`labels`, keeping the
        vocabulary (and everything derived from it: step alphabets,
        indexed path sets, Datalog programs) an exact function of the
        edges that actually exist.
        """
        relation = self._edges.get(label)
        src_id = self._name_to_id.get(src)
        tgt_id = self._name_to_id.get(tgt)
        if relation is None or src_id is None or tgt_id is None:
            return False
        pair = (src_id, tgt_id)
        if pair not in relation:
            return False
        relation.discard(pair)
        if not relation:
            del self._edges[label]
        outgoing = self._out[label]
        outgoing[src_id].remove(tgt_id)
        if not outgoing[src_id]:
            del outgoing[src_id]
            if not outgoing:
                del self._out[label]
        incoming = self._in[label]
        incoming[tgt_id].remove(src_id)
        if not incoming[tgt_id]:
            del incoming[tgt_id]
            if not incoming:
                del self._in[label]
        self._edge_count -= 1
        self._version += 1
        return True

    # -- inspection --------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of interned nodes (including isolated ones)."""
        return len(self._id_to_name)

    @property
    def edge_count(self) -> int:
        """Total number of labeled edges."""
        return self._edge_count

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation (node or edge add).

        Cache layers key on it: a cached result tagged with an older
        version can never be served against the mutated graph.
        """
        return self._version

    def labels(self) -> tuple[str, ...]:
        """The vocabulary of the graph, sorted."""
        return tuple(sorted(self._edges))

    def has_node(self, name: str) -> bool:
        return name in self._name_to_id

    def has_edge(self, src: str, label: str, tgt: str) -> bool:
        relation = self._edges.get(label)
        if relation is None:
            return False
        src_id = self._name_to_id.get(src)
        tgt_id = self._name_to_id.get(tgt)
        if src_id is None or tgt_id is None:
            return False
        return (src_id, tgt_id) in relation

    def node_id(self, name: str) -> int:
        """The integer id of ``name`` (raises :class:`UnknownNodeError`)."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise UnknownNodeError(f"unknown node {name!r}") from None

    def node_name(self, node_id: int) -> str:
        """The external name of an integer node id."""
        try:
            return self._id_to_name[node_id]
        except IndexError:
            raise UnknownNodeError(f"unknown node id {node_id}") from None

    def node_ids(self) -> range:
        """All node ids as a range (ids are dense)."""
        return range(len(self._id_to_name))

    def node_names(self) -> tuple[str, ...]:
        """All node names, in id order."""
        return tuple(self._id_to_name)

    def edges(self) -> Iterator[tuple[str, str, str]]:
        """Iterate ``(source, label, target)`` name triples, sorted by name."""
        names = self._id_to_name
        for label in self.labels():
            triples = sorted(
                (names[src_id], label, names[tgt_id])
                for src_id, tgt_id in self._edges[label]
            )
            yield from triples

    def label_edge_count(self, label: str) -> int:
        """Number of edges carrying ``label`` (0 for unknown labels)."""
        relation = self._edges.get(label)
        return len(relation) if relation is not None else 0

    # -- navigation (id level) ---------------------------------------------

    def out_neighbors(self, node_id: int, label: str) -> Sequence[int]:
        """Targets of ``label`` edges leaving ``node_id``, ascending by id."""
        return self._out.get(label, {}).get(node_id, ())

    def in_neighbors(self, node_id: int, label: str) -> Sequence[int]:
        """Sources of ``label`` edges entering ``node_id``, ascending by id."""
        return self._in.get(label, {}).get(node_id, ())

    def step_neighbors(self, node_id: int, step: Step) -> Sequence[int]:
        """Nodes reachable from ``node_id`` by one :class:`Step`."""
        if step.inverse:
            return self.in_neighbors(node_id, step.label)
        return self.out_neighbors(node_id, step.label)

    def step_pairs(self, step: Step) -> Iterator[tuple[int, int]]:
        """All ``(a, b)`` id pairs such that ``a --step--> b``.

        For a forward step these are exactly the label's edges; for an
        inverse step the edges with source and target exchanged.
        """
        relation = self._edges.get(step.label, ())
        if step.inverse:
            for src, tgt in relation:
                yield tgt, src
        else:
            yield from relation

    def step_relation(self, step: Step) -> set[tuple[int, int]]:
        """The relation of one step as a fresh set of id pairs."""
        return set(self.step_pairs(step))

    def undirected_neighbors(self, node_id: int) -> set[int]:
        """All nodes one *k-path* hop away, ignoring direction and label.

        This is the neighborhood used by the paper's ``paths_k``
        definition (Section 2.1), where an i-path may traverse each edge
        in either direction.
        """
        result: set[int] = set()
        for label in self._edges:
            result.update(self._out.get(label, {}).get(node_id, ()))
            result.update(self._in.get(label, {}).get(node_id, ()))
        return result

    def all_steps(self) -> tuple[Step, ...]:
        """Every step over the vocabulary: each label, both directions."""
        steps: list[Step] = []
        for label in self.labels():
            steps.append(Step(label))
            steps.append(Step(label, inverse=True))
        return tuple(steps)

    # -- misc ---------------------------------------------------------------

    def degree_out(self, node_id: int) -> int:
        """Total out-degree of a node across all labels."""
        return sum(len(adj.get(node_id, ())) for adj in self._out.values())

    def degree_in(self, node_id: int) -> int:
        """Total in-degree of a node across all labels."""
        return sum(len(adj.get(node_id, ())) for adj in self._in.values())

    def pairs_to_names(
        self, pairs: Iterable[tuple[int, int]]
    ) -> set[tuple[str, str]]:
        """Translate id pairs back to name pairs."""
        names = self._id_to_name
        return {(names[a], names[b]) for a, b in pairs}

    def __repr__(self) -> str:
        return (
            f"Graph(nodes={self.node_count}, edges={self.edge_count}, "
            f"labels={list(self.labels())})"
        )
