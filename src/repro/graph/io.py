"""Loading and saving graphs.

Three interchange formats are supported:

* **edge list** — one edge per line, ``source<sep>label<sep>target``,
  with ``#`` comments.  This is the format graph repositories such as
  KONECT (the source of the paper's Advogato dataset) distribute.
* **JSON** — a single object ``{"nodes": [...], "edges": [[s,l,t], ...]}``
  that round-trips isolated nodes as well.
* **CSV** — ``source,label,target`` rows with an optional header.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.errors import GraphError
from repro.graph.graph import Graph


def load_edgelist(
    path: str | Path,
    separator: str = "\t",
    comment: str = "#",
    default_label: str | None = None,
) -> Graph:
    """Read an edge-list file into a :class:`Graph`.

    Lines are ``source<sep>label<sep>target``; two-column lines are
    accepted when ``default_label`` is given (unlabeled datasets).
    Blank lines and lines starting with ``comment`` are skipped.
    """
    graph = Graph()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(separator)
            if len(parts) == 3:
                src, label, tgt = parts
            elif len(parts) == 2 and default_label is not None:
                src, tgt = parts
                label = default_label
            else:
                raise GraphError(
                    f"{path}:{line_no}: expected 3 fields separated by "
                    f"{separator!r}, got {len(parts)}"
                )
            graph.add_edge(src.strip(), label.strip(), tgt.strip())
    return graph


def save_edgelist(graph: Graph, path: str | Path, separator: str = "\t") -> None:
    """Write a graph as a sorted edge-list file.

    Isolated nodes are *not* representable in this format; use
    :func:`save_json` to preserve them.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# source{0}label{0}target\n".format(separator))
        for src, label, tgt in graph.edges():
            handle.write(f"{src}{separator}{label}{separator}{tgt}\n")


def load_json(path: str | Path) -> Graph:
    """Read a graph from the JSON interchange format."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "edges" not in payload:
        raise GraphError(f"{path}: not a graph JSON document")
    graph = Graph()
    for name in payload.get("nodes", []):
        graph.add_node(name)
    for entry in payload["edges"]:
        if len(entry) != 3:
            raise GraphError(f"{path}: malformed edge entry {entry!r}")
        src, label, tgt = entry
        graph.add_edge(src, label, tgt)
    return graph


def save_json(graph: Graph, path: str | Path) -> None:
    """Write a graph (including isolated nodes) as JSON."""
    payload = {
        "nodes": list(graph.node_names()),
        "edges": [list(edge) for edge in graph.edges()],
    }
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def load_csv(path: str | Path, has_header: bool = True) -> Graph:
    """Read ``source,label,target`` CSV rows into a :class:`Graph`."""
    graph = Graph()
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for row_no, row in enumerate(reader):
            if row_no == 0 and has_header:
                continue
            if not row:
                continue
            if len(row) != 3:
                raise GraphError(f"{path}: row {row_no} has {len(row)} fields")
            src, label, tgt = row
            graph.add_edge(src.strip(), label.strip(), tgt.strip())
    return graph


def save_csv(graph: Graph, path: str | Path) -> None:
    """Write a graph as ``source,label,target`` CSV with a header."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "label", "target"])
        for edge in graph.edges():
            writer.writerow(edge)


def from_triples(triples: Iterable[tuple[str, str, str]]) -> Graph:
    """Alias of :meth:`Graph.from_edges` for symmetry with the loaders."""
    return Graph.from_edges(triples)
