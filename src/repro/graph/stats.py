"""Graph statistics, including the paper's ``paths_k`` machinery.

Section 2.1 defines an *i-path* as a sequence of edges traversed in
either direction, and ``paths_k(G)`` as all node pairs ``(s, t)``
connected by an i-path for some ``i <= k`` — including every ``(s, s)``
via the 0-path.  ``|paths_k(G)|`` is the denominator of the paper's
selectivity function ``sel_{G,k}``.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ValidationError
from repro.graph.graph import Graph


def label_frequencies(graph: Graph) -> dict[str, int]:
    """Number of edges per label."""
    return {label: graph.label_edge_count(label) for label in graph.labels()}


@dataclass(frozen=True, slots=True)
class DegreeSummary:
    """Min / max / mean of a degree distribution."""

    minimum: int
    maximum: int
    mean: float


def out_degree_summary(graph: Graph) -> DegreeSummary:
    """Summary of total out-degrees over all nodes."""
    return _summarize(graph.degree_out(node) for node in graph.node_ids())


def in_degree_summary(graph: Graph) -> DegreeSummary:
    """Summary of total in-degrees over all nodes."""
    return _summarize(graph.degree_in(node) for node in graph.node_ids())


def _summarize(values: Iterator[int]) -> DegreeSummary:
    values = list(values)
    if not values:
        return DegreeSummary(0, 0, 0.0)
    return DegreeSummary(min(values), max(values), sum(values) / len(values))


def degree_histogram(graph: Graph, direction: str = "out") -> dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    if direction == "out":
        degrees = (graph.degree_out(node) for node in graph.node_ids())
    elif direction == "in":
        degrees = (graph.degree_in(node) for node in graph.node_ids())
    else:
        raise ValidationError(f"direction must be 'out' or 'in', got {direction!r}")
    return dict(Counter(degrees))


def paths_k_from(graph: Graph, source: int, k: int) -> set[int]:
    """All targets ``t`` with an i-path from ``source`` for some i <= k.

    Implemented as a depth-bounded BFS over the *undirected* step graph
    (any label, either direction), per the paper's i-path definition.
    The source itself is always included (the 0-path).
    """
    if k < 0:
        raise ValidationError(f"k must be non-negative, got {k}")
    seen: set[int] = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, depth = frontier.popleft()
        if depth == k:
            continue
        for neighbor in graph.undirected_neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, depth + 1))
    return seen


def count_paths_k(graph: Graph, k: int) -> int:
    """``|paths_k(G)|``: the number of pairs within i-path distance <= k.

    This is the selectivity denominator of Section 3.2.  Every ``(s, s)``
    pair counts (0-paths), so the result is at least ``node_count``.
    """
    return sum(len(paths_k_from(graph, node, k)) for node in graph.node_ids())


def paths_k_pairs(graph: Graph, k: int) -> Iterator[tuple[int, int]]:
    """Iterate the pairs counted by :func:`count_paths_k` (small graphs)."""
    for node in graph.node_ids():
        for target in sorted(paths_k_from(graph, node, k)):
            yield node, target


def star_bound(graph: Graph) -> int:
    """The ``n(G)`` of Section 2.2: a bound such that R* = R^{0,n(G)}.

    If ``(a, b)`` is in ``R^m`` for some ``m >= 1`` then ``a`` reaches
    ``b`` in the digraph whose edges are the pairs of ``R(G)``; the
    shortest such walk visits no node twice, so length ``<= |V| - 1``
    always suffices.
    """
    return max(graph.node_count - 1, 0)


@dataclass(frozen=True, slots=True)
class GraphSummary:
    """A one-look description of a graph, used by the CLI and reports."""

    nodes: int
    edges: int
    labels: tuple[str, ...]
    label_counts: dict[str, int]
    out_degrees: DegreeSummary
    in_degrees: DegreeSummary

    def format(self) -> str:
        lines = [
            f"nodes:  {self.nodes}",
            f"edges:  {self.edges}",
            f"labels: {', '.join(self.labels) or '(none)'}",
        ]
        for label in self.labels:
            lines.append(f"  {label}: {self.label_counts[label]}")
        lines.append(
            "out-degree: min=%d max=%d mean=%.2f"
            % (self.out_degrees.minimum, self.out_degrees.maximum, self.out_degrees.mean)
        )
        lines.append(
            "in-degree:  min=%d max=%d mean=%.2f"
            % (self.in_degrees.minimum, self.in_degrees.maximum, self.in_degrees.mean)
        )
        return "\n".join(lines)


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    return GraphSummary(
        nodes=graph.node_count,
        edges=graph.edge_count,
        labels=graph.labels(),
        label_counts=label_frequencies(graph),
        out_degrees=out_degree_summary(graph),
        in_degrees=in_degree_summary(graph),
    )
