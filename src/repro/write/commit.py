"""Group commit: many writers, one flush, one patch per shard.

Writers from many client threads call
:meth:`GroupCommitter.submit` concurrently.  The first arrival becomes
the *leader*: it optionally waits a short coalescing window
(``group_commit_ms``) for followers to queue up, drains the queue, and
runs the commit callable once for the whole group — one write-lock
acquisition, one log append run + one ``fsync``, one index delta per
touched shard — then hands each follower its own
:class:`~repro.write.mutation.ApplyResult`.  Followers just park on the
condition variable; a follower whose batch was not drained becomes the
next leader when the current one finishes.

The payoff is the classic WAL group commit: under a write storm of N
concurrent clients the per-batch cost collapses from "one fsync + one
shard patch each" to "1/N of one fsync + 1/N of a merged patch", while
a lone writer with ``group_commit_ms=0`` pays no added latency at all.

Failure is all-or-nothing per group: if the commit callable raises
(a failed flush, a poisoned rebuild), every batch in the group gets
the same error and the leader re-raises it; nothing was acknowledged,
so re-submitting is safe.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from repro.errors import ReproError, ValidationError
from repro.write.mutation import ApplyResult, MutationBatch

#: Commit callable: all batches of one group, in arrival order, to
#: their per-batch results (same length, same order).
CommitFn = Callable[[Sequence[MutationBatch]], Sequence[ApplyResult]]


class _Ticket:
    __slots__ = ("batch", "result", "error", "done")

    def __init__(self, batch: MutationBatch) -> None:
        self.batch = batch
        self.result: ApplyResult | None = None
        self.error: BaseException | None = None
        self.done = False


class GroupCommitter:
    """Serialize batches into leader-flushed commit groups.

    ``window_s`` is the coalescing window (0 commits immediately);
    ``max_group`` caps how many batches one leader drains — arrivals
    beyond the cap form the next group, so one flush never grows
    unboundedly large.
    """

    def __init__(
        self, commit: CommitFn, window_s: float = 0.0, max_group: int = 64
    ) -> None:
        if window_s < 0:
            raise ValidationError(f"window must be >= 0, got {window_s}")
        if max_group < 1:
            raise ValidationError(f"max_group must be >= 1, got {max_group}")
        self._commit = commit
        self._window = window_s
        self._max_group = max_group
        self._cond = threading.Condition()
        self._queue: list[_Ticket] = []
        self._leader_active = False
        #: Commit groups flushed (telemetry, read by ``stats()``).
        self.groups = 0
        #: Batches that rode another batch's flush (group size - 1, summed).
        self.coalesced = 0

    def submit(self, batch: MutationBatch) -> ApplyResult:
        """Commit ``batch`` (possibly coalesced); block until durable."""
        ticket = _Ticket(batch)
        group: list[_Ticket] | None = None
        with self._cond:
            self._queue.append(ticket)
            self._cond.notify_all()
            while not ticket.done:
                if not self._leader_active and self._queue[0] is ticket:
                    self._leader_active = True
                    self._await_followers()
                    group = self._queue[: self._max_group]
                    del self._queue[: self._max_group]
                    break
                self._cond.wait()
        if group is not None:
            try:
                self._run_group(group)
            finally:
                with self._cond:
                    self._leader_active = False
                    self._cond.notify_all()
        if ticket.error is not None:
            raise ticket.error
        assert ticket.result is not None
        return ticket.result

    def _await_followers(self) -> None:
        """Leader-side coalescing wait (holding the condition)."""
        if self._window <= 0:
            return
        deadline = time.monotonic() + self._window
        while len(self._queue) < self._max_group:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._cond.wait(timeout=remaining)

    def _run_group(self, group: list[_Ticket]) -> None:
        """Run the commit callable; never raises (errors go to tickets)."""
        try:
            results = self._commit([ticket.batch for ticket in group])
            if len(results) != len(group):
                raise ReproError(
                    f"commit returned {len(results)} results for a group "
                    f"of {len(group)}"
                )
        except BaseException as error:
            with self._cond:
                for ticket in group:
                    ticket.error = error
                    ticket.done = True
                self._cond.notify_all()
            return
        with self._cond:
            self.groups += 1
            self.coalesced += len(group) - 1
            for ticket, result in zip(group, results):
                ticket.result = result
                ticket.done = True
            self._cond.notify_all()
