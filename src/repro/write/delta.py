"""Sharded delta patching: turn a commit group into per-shard index edits.

This is the marriage of the paper's dynamic-maintenance story
(:mod:`repro.indexes.dynamic` — localized ``A x B`` deltas per edge)
with the sharded engine (:mod:`repro.sharding` — entries partitioned by
path start).  Instead of rebuilding the touched shard *ball* per
mutation, a whole commit group becomes one small set of B+tree point
edits per touched shard.

Two phases:

* :func:`stage_group` applies every mutation of the group to the graph
  (in order), collecting per-path *dirty pairs* — the union of each
  graph-changing mutation's :func:`~repro.indexes.dynamic.edge_delta`,
  evaluated post-insert for additions and pre-delete for removals —
  plus the union of touched-shard balls.  Why the union of deltas is a
  superset of every membership change across the group: take any pair
  whose membership of path ``p`` differs between the group's initial
  and final graph.  If it became *present*, its final witness exists;
  let ``e`` be the witness edge whose last graph-changing touch is
  latest — at that touch (an add) every other witness edge already has
  its final, present state, so the witness is intact and the pair is
  in ``e``'s delta.  If it became *absent*, take any initial witness;
  its first-changed edge is a removal (a change to a present edge is a
  removal), and at that pre-delete moment the witness is still intact.
  No-op mutations change no witnesses and are correctly skipped.

* :func:`resolve_patch` then decides each dirty pair *against the
  final graph* (bounded ``path_targets`` search) and routes it to the
  shard owning its start vertex: present pairs become idempotent
  inserts, absent ones idempotent deletes.  Because every changed pair
  is dirty and every dirty pair is set to its final truth, patching is
  exactly equivalent to a rebuild — the property tests pin this
  against the shards=1 oracle.

Staging falls back (returns a non-``None`` ``fallback``) when a delta
is non-local: the label alphabet changed (the per-shard path sets
themselves are stale — full rebuild), or the dirty-pair count passed
``max_pairs`` (the k-radius ball blew up — ball rebuild is cheaper
than pair-at-a-time patching).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.graph import Graph, LabelPath
from repro.indexes.dynamic import edge_delta, path_targets
from repro.write.mutation import MutationBatch

Pair = tuple[int, int]

#: Per-shard patch: encoded path -> (pairs to insert, pairs to delete).
ShardPatch = dict[str, tuple[list[Pair], list[Pair]]]


@dataclass(slots=True)
class StagedGroup:
    """Outcome of applying one commit group to the graph."""

    #: Per-batch ``(applied, noops)`` counts, in group order.
    batch_counts: list[tuple[int, int]] = field(default_factory=list)
    #: Union of touched-shard balls (valid unless ``fallback`` is
    #: ``"alphabet"``, which forces a full rebuild anyway).
    touched: set[int] = field(default_factory=set)
    #: Encoded path -> dirty pairs (meaningful only when ``fallback``
    #: is ``None``).
    dirty: dict[str, set[Pair]] = field(default_factory=dict)
    #: ``None`` (patchable), ``"alphabet"`` or ``"overflow"``.
    fallback: str | None = None

    @property
    def changed(self) -> bool:
        return any(applied for applied, _ in self.batch_counts)


def stage_group(
    graph: Graph,
    index,
    batches: list[MutationBatch],
    paths: list[LabelPath],
    max_pairs: int,
) -> StagedGroup:
    """Apply ``batches`` to ``graph`` in order; collect the group delta.

    ``index`` supplies the shard topology (``shards_touching``) and
    must be the sharded index built over ``graph``; ``paths`` is the
    indexed path enumeration over the *pre-group* alphabet.  The graph
    is mutated unconditionally — on fallback the caller rebuilds from
    it; there is no path that leaves the group half-applied.
    """
    staged = StagedGroup()
    budget = max_pairs
    for batch in batches:
        applied = 0
        noops = 0
        for mutation in batch:
            if mutation.kind == "add":
                new_label = mutation.label not in graph.labels()
                if not mutation.apply_to(graph):
                    noops += 1
                    continue
                applied += 1
                if new_label:
                    staged.fallback = "alphabet"
                    staged.dirty.clear()
                if staged.fallback == "alphabet":
                    continue
                source = graph.node_id(mutation.source)
                target = graph.node_id(mutation.target)
                # Ball and delta both on the post-insert graph.
                staged.touched |= index.shards_touching((source, target))
                if staged.fallback is None:
                    budget = _collect(
                        graph, paths, mutation, source, target, staged, budget
                    )
            else:
                if not graph.has_edge(
                    mutation.source, mutation.label, mutation.target
                ):
                    noops += 1
                    continue
                if staged.fallback != "alphabet":
                    source = graph.node_id(mutation.source)
                    target = graph.node_id(mutation.target)
                    # Ball and candidates on the pre-delete graph: the
                    # witnesses being retracted run through the edge.
                    staged.touched |= index.shards_touching((source, target))
                    if staged.fallback is None:
                        budget = _collect(
                            graph, paths, mutation, source, target, staged, budget
                        )
                mutation.apply_to(graph)
                applied += 1
                if mutation.label not in graph.labels():
                    staged.fallback = "alphabet"
                    staged.dirty.clear()
        staged.batch_counts.append((applied, noops))
    return staged


def _collect(
    graph: Graph,
    paths: list[LabelPath],
    mutation,
    source: int,
    target: int,
    staged: StagedGroup,
    budget: int,
) -> int:
    """Fold one edge's per-path deltas into the staged dirty set."""
    for path in paths:
        delta = edge_delta(graph, path, mutation.label, source, target)
        if not delta:
            continue
        bucket = staged.dirty.setdefault(path.encode(), set())
        before = len(bucket)
        bucket.update(delta)
        budget -= len(bucket) - before
        if budget < 0:
            staged.fallback = "overflow"
            staged.dirty.clear()
            return budget
    return budget


def resolve_patch(
    graph: Graph, index, dirty: dict[str, set[Pair]]
) -> dict[int, ShardPatch]:
    """Decide every dirty pair against the final graph; route per shard.

    A pair present in the final graph becomes an (idempotent) insert
    into the shard owning its start vertex; an absent one an
    (idempotent) delete.  Shards with no decided pairs are absent from
    the result.
    """
    per_shard: dict[int, ShardPatch] = {}
    for encoded, pairs in dirty.items():
        path = LabelPath.decode(encoded)
        for pair in sorted(pairs):
            present = pair[1] in path_targets(graph, pair[0], path)
            shard = index.owner(pair[0])
            adds, removes = per_shard.setdefault(shard, {}).setdefault(
                encoded, ([], [])
            )
            (adds if present else removes).append(pair)
    return per_shard
