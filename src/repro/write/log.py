"""The crash-safe append-only mutation log (write-ahead, group-flushed).

Durability backbone of the write path: every :class:`MutationBatch` is
appended as one length-prefixed record *before* it touches the graph or
any shard index, and made durable by one ``fsync`` per commit *group*
(many batches ride one flush — see
:class:`repro.write.commit.GroupCommitter`).

Records reuse the serve wire framing
(:func:`repro.serve.protocol.pack_frame`): ``[header_len u32]
[body_len u32][JSON header][body]`` with the header carrying the
record's sequence number and a CRC-32 of the body, and the body the
batch's JSON wire form.  Sequence numbers are dense (1, 2, 3, ...), so
"the suffix past seq N" is well defined for replica resync.

Crash recovery is the standard WAL contract:

* **torn tail** — a crash mid-append or mid-flush leaves a truncated or
  CRC-corrupt final record; :meth:`~MutationLog.open` scans forward and
  truncates the file back to the last intact record.  Everything before
  it is intact (records are written strictly in order), everything
  after was never acknowledged, so dropping it is correct.
* **failed flush** — if the group flush itself fails (I/O error, or an
  injected ``mutlog.flush`` crash), the un-synced suffix is rolled back
  so the in-memory image, the file, and the sequence counter agree;
  the committer then fails every batch in the group.  Re-submitting is
  safe because graph mutations are idempotent and replay re-applies
  whole batches.

Fault points: ``mutlog.append`` fires per record write,
``mutlog.flush`` per group flush (the crash-kind point the chaos tests
arm to kill a commit between append and fsync).
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path as FilePath
from typing import Iterator

from repro.errors import StorageError, TransientWireError, WireError
from repro.faults import fire
from repro.serve.protocol import pack_frame, read_frame
from repro.write.mutation import MutationBatch


class MutationLog:
    """Append-only batch log at ``path``; one file, one writer.

    ``sync=False`` skips the per-flush ``fsync`` (for benchmarks that
    measure coalescing without paying the disk); the default is the
    durable contract described in the module docstring.
    """

    def __init__(self, path: str | FilePath, sync: bool = True) -> None:
        self._path = FilePath(path)
        self._sync = sync
        exists = self._path.exists()
        self._handle = open(self._path, "r+b" if exists else "w+b")
        #: Records found intact on open (the durable prefix).
        self.recovered_records = 0
        #: Bytes of torn tail discarded by the open-time scan.
        self.truncated_bytes = 0
        self._durable_seq = 0
        self._recover()
        self._durable_offset = self._handle.tell()
        self._tail_seq = self._durable_seq

    # -- open-time recovery ------------------------------------------------

    def _recover(self) -> None:
        """Scan to the last intact record; truncate any torn tail."""
        self._handle.seek(0, os.SEEK_END)
        size = self._handle.tell()
        self._handle.seek(0)
        good_offset = 0
        while True:
            try:
                header, body = read_frame(self._handle.read)
            except TransientWireError:
                break  # clean or mid-frame EOF: the tail is torn here
            except WireError:
                break  # corrupt lengths or header: same treatment
            seq = header.get("seq")
            if (
                not isinstance(seq, int)
                or seq != self._durable_seq + 1
                or header.get("crc") != zlib.crc32(body)
            ):
                break
            self._durable_seq = seq
            self.recovered_records += 1
            good_offset = self._handle.tell()
        if good_offset < size:
            self.truncated_bytes = size - good_offset
            self._handle.seek(good_offset)
            self._handle.truncate()
        self._handle.seek(good_offset)

    # -- the write side ----------------------------------------------------

    @property
    def path(self) -> FilePath:
        return self._path

    @property
    def last_seq(self) -> int:
        """Sequence number of the last *durable* (flushed) record."""
        return self._durable_seq

    def append(self, batch: MutationBatch) -> int:
        """Buffer one batch record; durable only after :meth:`flush`."""
        seq = self._tail_seq + 1
        body = MutationBatch.coerce(batch).as_json_bytes()
        fire("mutlog.append", seq=seq, mutations=len(batch))
        try:
            self._handle.write(
                pack_frame({"seq": seq, "crc": zlib.crc32(body)}, body)
            )
        except OSError as error:
            self.rollback()
            raise StorageError(f"mutation log append failed: {error}") from error
        self._tail_seq = seq
        return seq

    def flush(self) -> None:
        """Make every appended record durable (the group-commit fsync).

        On any failure — an I/O error or an injected ``mutlog.flush``
        crash — the un-synced suffix is rolled back before the error
        propagates, so the log never acknowledges records it may not
        hold.
        """
        pending = self._tail_seq - self._durable_seq
        try:
            fire("mutlog.flush", records=pending)
            self._handle.flush()
            if self._sync:
                os.fsync(self._handle.fileno())
        except OSError as error:
            self.rollback()
            raise StorageError(
                f"mutation log flush failed: {error}"
            ) from error
        except BaseException:
            self.rollback()
            raise
        self._durable_offset = self._handle.tell()
        self._durable_seq = self._tail_seq

    def rollback(self) -> None:
        """Discard appended-but-unflushed records (failed group commit)."""
        self._handle.seek(self._durable_offset)
        self._handle.truncate()
        self._tail_seq = self._durable_seq

    # -- the read side -----------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, MutationBatch]]:
        """Yield ``(seq, batch)`` for every durable record past ``after_seq``.

        Reads a fresh handle, so replay can run while the writer holds
        the log open (a restarted worker resyncing against a live
        coordinator).  Only the durable prefix is yielded.
        """
        with open(self._path, "rb") as handle:
            seq = 0
            while seq < self._durable_seq:
                try:
                    header, body = read_frame(handle.read)
                except (TransientWireError, WireError):
                    break
                seq = int(header["seq"])
                if seq <= after_seq:
                    continue
                yield seq, MutationBatch.from_json_bytes(body)

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "MutationLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MutationLog(path={str(self._path)!r}, "
            f"durable_seq={self._durable_seq})"
        )
