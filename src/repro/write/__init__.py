"""The sharded write path: mutation values, the log, group commit, deltas.

Layering (bottom up):

* :mod:`repro.write.mutation` — :class:`Mutation`/:class:`MutationBatch`
  value types and :class:`ApplyResult`, the unified write API surface.
* :mod:`repro.write.log` — the crash-safe append-only
  :class:`MutationLog` (WAL records in the serve frame format).
* :mod:`repro.write.commit` — :class:`GroupCommitter`, coalescing many
  writers into one flush + one patch per shard.
* :mod:`repro.write.delta` — staging a commit group into per-shard
  B+tree point edits via the dynamic-index delta algorithm.

``GraphDatabase.apply`` (and its coordinator/client/CLI mirrors) is the
single entry point that threads these together.
"""

from repro.write.commit import GroupCommitter
from repro.write.log import MutationLog
from repro.write.mutation import ApplyResult, Mutation, MutationBatch

__all__ = [
    "ApplyResult",
    "GroupCommitter",
    "Mutation",
    "MutationBatch",
    "MutationLog",
]
