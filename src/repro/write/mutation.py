"""Mutation value types: the unit of the unified write API.

Every write — a single ``add_edge`` call, a CLI-streamed edge-list
delta, a client ``POST /apply`` — is expressed as a
:class:`MutationBatch` of :class:`Mutation` records and handed to one
entry point, ``GraphDatabase.apply(batch)``.  The types here are the
contract of that surface:

* **eager validation** — a :class:`Mutation` validates its kind, node
  names and edge label at construction time, so once a batch has been
  appended to the durable mutation log its application to the graph
  *cannot* fail.  (Graph mutation raises only on malformed input, and
  malformed input never reaches the log.)
* **wire shape** — ``as_wire``/``from_wire`` define the one JSON
  encoding shared by the HTTP ``/apply`` route, the worker RPC
  broadcast and the on-disk log records.
* **idempotence** — ``apply_to(graph)`` returns whether the graph
  changed; re-applying a mutation is a no-op, which is what makes log
  replay after a crash safe (a batch can never double-apply).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ValidationError
from repro.graph.graph import Graph, _check_label

#: The two mutation kinds.  Edge-level only: node creation is implicit
#: in ``add`` (exactly the :meth:`Graph.add_edge` contract).
MUTATION_KINDS = ("add", "remove")


@dataclass(frozen=True, slots=True)
class Mutation:
    """One edge-level write: ``add``/``remove`` ``source -label-> target``."""

    kind: str
    source: str
    label: str
    target: str

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValidationError(
                f"unknown mutation kind {self.kind!r}; "
                f"expected one of {MUTATION_KINDS}"
            )
        for name in (self.source, self.target):
            if not isinstance(name, str) or not name:
                raise ValidationError(
                    f"node names must be non-empty strings, got {name!r}"
                )
        _check_label(self.label)

    @classmethod
    def add(cls, source: str, label: str, target: str) -> "Mutation":
        return cls("add", source, label, target)

    @classmethod
    def remove(cls, source: str, label: str, target: str) -> "Mutation":
        return cls("remove", source, label, target)

    def apply_to(self, graph: Graph) -> bool:
        """Apply to ``graph``; return whether it changed (idempotent)."""
        if self.kind == "add":
            return graph.add_edge(self.source, self.label, self.target)
        return graph.remove_edge(self.source, self.label, self.target)

    def as_wire(self) -> dict:
        return {
            "kind": self.kind,
            "source": self.source,
            "label": self.label,
            "target": self.target,
        }

    @classmethod
    def from_wire(cls, payload: object) -> "Mutation":
        if not isinstance(payload, dict):
            raise ValidationError(f"mutation must be an object, got {payload!r}")
        try:
            return cls(
                kind=payload["kind"],
                source=payload["source"],
                label=payload["label"],
                target=payload["target"],
            )
        except KeyError as error:
            raise ValidationError(f"mutation missing field {error}") from error


class MutationBatch:
    """An ordered, immutable sequence of mutations applied atomically.

    "Atomically" in the log-and-lock sense: the whole batch is appended
    as one log record and applied under one write-lock acquisition, so
    readers observe either none or all of it and replay re-applies it
    as a unit.
    """

    __slots__ = ("mutations",)

    def __init__(self, mutations: Iterable[Mutation]):
        mutations = tuple(mutations)
        for mutation in mutations:
            if not isinstance(mutation, Mutation):
                raise ValidationError(f"not a Mutation: {mutation!r}")
        object.__setattr__(self, "mutations", mutations)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MutationBatch is immutable")

    @classmethod
    def of(cls, *mutations: Mutation) -> "MutationBatch":
        return cls(mutations)

    @classmethod
    def coerce(cls, value: object) -> "MutationBatch":
        """Normalize what ``apply()`` accepts into a batch.

        A single :class:`Mutation`, an iterable of them, or an existing
        batch (returned unchanged).
        """
        if isinstance(value, MutationBatch):
            return value
        if isinstance(value, Mutation):
            return cls((value,))
        if isinstance(value, Iterable) and not isinstance(value, (str, bytes)):
            return cls(value)
        raise ValidationError(
            f"cannot build a MutationBatch from {value!r}; pass a "
            "Mutation, an iterable of Mutations, or a MutationBatch"
        )

    def __iter__(self) -> Iterator[Mutation]:
        return iter(self.mutations)

    def __len__(self) -> int:
        return len(self.mutations)

    def __bool__(self) -> bool:
        return bool(self.mutations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MutationBatch):
            return NotImplemented
        return self.mutations == other.mutations

    def __hash__(self) -> int:
        return hash(self.mutations)

    def as_wire(self) -> list[dict]:
        return [mutation.as_wire() for mutation in self.mutations]

    @classmethod
    def from_wire(cls, payload: object) -> "MutationBatch":
        if not isinstance(payload, list):
            raise ValidationError(
                f"mutation batch must be a list, got {payload!r}"
            )
        return cls(Mutation.from_wire(entry) for entry in payload)

    def as_json_bytes(self) -> bytes:
        """The batch's log-record body (wire form, compact JSON)."""
        return json.dumps(self.as_wire(), separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_json_bytes(cls, body: bytes) -> "MutationBatch":
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValidationError(
                f"undecodable mutation batch record: {error}"
            ) from error
        return cls.from_wire(payload)

    def __repr__(self) -> str:
        return f"MutationBatch({len(self.mutations)} mutations)"


@dataclass(frozen=True, slots=True)
class ApplyResult:
    """What one batch did, as observed after its commit group flushed.

    ``mode`` records how the index absorbed the group the batch rode
    in: ``"patch"`` (per-shard delta patching), ``"rebuild"`` (ball or
    full rebuild fallback), or ``"noop"`` (nothing changed).
    ``patched_shards`` lists the shards the group's delta touched
    (empty for rebuilds and no-ops).
    """

    applied: int
    noops: int
    version: int
    mode: str
    patched_shards: tuple[int, ...] = ()

    @property
    def changed(self) -> bool:
        return self.applied > 0

    def as_wire(self) -> dict:
        return {
            "applied": self.applied,
            "noops": self.noops,
            "version": self.version,
            "mode": self.mode,
            "patched_shards": list(self.patched_shards),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "ApplyResult":
        try:
            return cls(
                applied=int(payload["applied"]),
                noops=int(payload["noops"]),
                version=int(payload["version"]),
                mode=str(payload["mode"]),
                patched_shards=tuple(
                    int(shard) for shard in payload.get("patched_shards", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(
                f"malformed apply result payload: {error}"
            ) from error
