"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or access (bad label, unknown node, ...)."""


class UnknownNodeError(GraphError):
    """A node name or identifier is not present in the graph."""


class ParseError(ReproError):
    """The RPQ text could not be parsed.

    Attributes
    ----------
    position:
        Zero-based character offset of the offending token, or ``None``
        when the error is not tied to a single position.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class RewriteError(ReproError):
    """An RPQ could not be rewritten into the planner's normal form."""


class PlanningError(ReproError):
    """No physical plan could be produced for a query."""


class ExecutionError(ReproError):
    """A physical plan failed during execution."""


class PathIndexError(ReproError):
    """The k-path index was used incorrectly (e.g. path longer than k)."""


class StorageError(ReproError):
    """Low-level storage failure (page corruption, codec error, ...)."""


class KeyOrderError(StorageError):
    """Keys supplied to a bulk-load were not in strictly ascending order."""


class TransientError(Exception):
    """Mixin marking a failure as safe to retry.

    Not raised directly: concrete errors multiply-inherit it next to
    their domain base (e.g. :class:`TransientStorageError`), so retry
    loops can classify by ``isinstance(error, TransientError)`` while
    API boundaries keep catching the domain hierarchy.  Anything *not*
    carrying this mixin is permanent by definition — retrying it would
    only repeat the failure.
    """


class TransientStorageError(TransientError, StorageError):
    """A storage failure expected to succeed on retry (I/O hiccup,
    injected fault, contended handle) — as opposed to a permanent
    :class:`StorageError` like a corrupt page or a bad magic number."""


class WireError(StorageError):
    """A malformed or corrupt RPC frame (bad magic, truncated body,
    impossible length) — permanent for the payload in question, so it
    participates in storage-error handling: strict executions surface
    it, ``degraded=True`` drops the affected shard slice."""


class TransientWireError(TransientError, WireError):
    """An RPC transport hiccup expected to succeed on retry
    (connection reset, EOF mid-frame, socket timeout, backpressure
    rejection) — as opposed to a permanent :class:`WireError` like a
    frame that decoded to garbage."""


class QueryTimeoutError(ReproError):
    """A query exceeded its cooperative deadline (``timeout_ms``).

    Attributes
    ----------
    counters:
        The partial :class:`repro.engine.operators.ScatterCounters` at
        the moment the deadline fired, or ``None`` when the timeout hit
        outside a counted execution (e.g. on the unsharded path).
    """

    def __init__(self, message: str, counters=None):
        super().__init__(message)
        self.counters = counters


class ShardUnavailableError(ReproError):
    """A shard stayed down after retries (crash or exhausted transients).

    Permanent for the current execution: ``query(degraded=True)`` turns
    it into a partial answer; the default strict mode propagates it.

    Attributes
    ----------
    shard:
        The shard that failed, or ``None`` when unknown.
    """

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class DatalogError(ReproError):
    """Invalid Datalog program or evaluation failure."""


class UnsupportedQueryError(ReproError):
    """The chosen evaluation method cannot answer this query shape.

    Raised, for example, by the reachability-index baseline (approach 3
    in the paper) for queries that are not of the restricted
    single-label-star form it supports.
    """


class ValidationError(ReproError):
    """An argument failed validation at an API boundary."""
