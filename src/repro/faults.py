"""Deterministic fault injection, deadlines, and retry policies.

The resilience substrate of the sharded engine.  Three pieces:

* **Fault injection** — a :class:`FaultPlan` is a list of
  :class:`FaultRule`\\ s armed process-wide (:func:`arm` /
  ``REPRO_FAULTS=`` in the environment).  Production code calls
  :func:`fire` at named *injection points*; when a rule matches, the
  plan raises a transient storage error, simulates a worker crash
  (``BrokenExecutor``), sleeps, or corrupts the bytes flowing through
  the point.  Everything is deterministic: randomness comes from one
  seeded RNG, sleeps go through an injectable clock, and per-context
  fire caps (``times=``) make "fail once, then recover" scenarios
  exactly reproducible.  Disarmed (the default), :func:`fire` is a
  single ``is None`` test — the hot path pays nothing.

* **Deadlines** — a :class:`Deadline` wraps ``timeout_ms`` against a
  :class:`Clock`.  Execution checks it *cooperatively* at operator,
  scatter and closure-loop boundaries
  (:meth:`Deadline.check` raises
  :class:`~repro.errors.QueryTimeoutError`), so a runaway query stops
  at the next boundary instead of running unbounded.

* **Retries** — :func:`retry_call` re-invokes a callable on
  :class:`~repro.errors.TransientError` with capped exponential
  backoff (:class:`RetryPolicy`), sleeping through the armed plan's
  clock so tests advance time instantly, and never sleeping past a
  live deadline.

Injection points wired through the engine:

==========================  ==================================================
``storage.read_page``       disk pager buffer-pool miss (``corrupt`` allowed)
``shard.scan``              one shard's slice of an index scan
``shard.build``             per-shard payload computation (serial path) and
                            the pool-submission stage (``stage="pool"``)
``prepared.artifact_load``  plan-artifact store open/load (fail-open)
``gather.merge``            the scatter-gather merge of shard slices
``rpc.send``                a coordinator-to-worker request hitting the wire
``rpc.recv``                a worker reply frame arriving (``corrupt`` allowed)
``mutlog.append``           one mutation-log record being buffered
``mutlog.flush``            the group-commit fsync (``crash`` allowed — kills
                            a commit between append and durability)
==========================  ==================================================

``REPRO_FAULTS`` grammar (clauses separated by ``;``)::

    REPRO_FAULTS="seed=7;shard.scan=transient@0.5,times=1;gather.merge=latency,delay_ms=5"

Each non-``seed`` clause is ``point=kind[@rate][,option=value...]``
with ``kind`` one of ``transient`` / ``crash`` / ``latency`` /
``corrupt``; options are ``times`` (max fires per distinct context),
``delay_ms`` (latency kinds) and ``shard`` (only fire for one shard).
Garbage fails loudly with :class:`~repro.errors.ValidationError` —
silently testing the wrong failure mode is worse than not testing.
"""

from __future__ import annotations

import os
import random
import threading
import time as _time
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import (
    QueryTimeoutError,
    TransientError,
    TransientStorageError,
    ValidationError,
)

#: The injection points production code actually calls :func:`fire` at.
INJECTION_POINTS = (
    "storage.read_page",
    "shard.scan",
    "shard.build",
    "prepared.artifact_load",
    "gather.merge",
    "rpc.send",
    "rpc.recv",
    "mutlog.append",
    "mutlog.flush",
)

#: Fault kinds a rule may carry.
FAULT_KINDS = ("transient", "crash", "latency", "corrupt")

#: ``crash`` simulates a process dying where one can: a pool worker (or
#: its serial stand-in), or the writer between a log append and its
#: fsync — the torn-commit case the write path's recovery must absorb.
CRASH_POINTS = ("shard.scan", "shard.build", "mutlog.flush")

#: ``corrupt`` mutates bytes in flight: the page reader and the RPC
#: reply path are the two places raw buffers cross a trust boundary.
CORRUPT_POINTS = ("storage.read_page", "rpc.recv")


# -- clocks --------------------------------------------------------------------


class Clock:
    """Monotonic time + sleep, as an injectable pair."""

    __slots__ = ()

    def now(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class FakeClock(Clock):
    """A manually advanced clock: ``sleep`` moves time, nothing waits.

    What makes backoff and deadline tests deterministic and instant —
    and what keeps fault-injection property tests hang-free even when
    a generated plan piles up latency rules.
    """

    __slots__ = ("_now", "sleeps", "_lock")

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        #: Every sleep duration requested, in order (test observable).
        self.sleeps: list[float] = []
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            if seconds > 0:
                self._now += seconds

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._now += seconds


#: The process default clock (wall time).
SYSTEM_CLOCK = Clock()


def current_clock() -> Clock:
    """The armed plan's clock, or the system clock when disarmed.

    Deadlines and retry backoff read time through this, so arming a
    :class:`FakeClock`-backed plan makes the *whole* timeout/retry
    machinery virtual-time driven.
    """
    plan = _PLAN
    return plan.clock if plan is not None else SYSTEM_CLOCK


# -- deadlines -----------------------------------------------------------------


class Deadline:
    """A cooperative time budget for one query execution.

    Created once at the API boundary (``query(timeout_ms=...)``) and
    checked at operator/scatter/closure-loop boundaries.  Checks are
    two float comparisons — cheap enough for per-shard and per-round
    granularity, deliberately not per-tuple.
    """

    __slots__ = ("timeout_ms", "clock", "_expires")

    def __init__(self, timeout_ms: float, clock: Clock | None = None) -> None:
        if timeout_ms <= 0:
            raise ValidationError(f"timeout_ms must be > 0, got {timeout_ms}")
        self.timeout_ms = timeout_ms
        self.clock = clock if clock is not None else current_clock()
        self._expires = self.clock.now() + timeout_ms / 1000.0

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires - self.clock.now()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self) -> None:
        """Raise :class:`QueryTimeoutError` once the budget is spent."""
        if self.remaining() <= 0:
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout_ms:g} ms deadline"
            )


# -- retries -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff for transient failures.

    ``attempts`` counts *total* tries (1 = no retry).  The delay before
    retry ``i`` (1-based) is ``min(cap_delay_ms, base_delay_ms *
    multiplier**(i - 1))`` — deterministic, no jitter: under a seeded
    fault plan the whole failure/recovery timeline must replay exactly.
    """

    attempts: int = 3
    base_delay_ms: float = 10.0
    cap_delay_ms: float = 200.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValidationError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_ms < 0 or self.cap_delay_ms < 0:
            raise ValidationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delay_ms(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (0-based)."""
        return min(
            self.cap_delay_ms, self.base_delay_ms * self.multiplier**attempt
        )


#: The engine's default: 3 tries, 10ms/20ms backoff.
DEFAULT_RETRY = RetryPolicy()


def retry_call(callable_, policy: RetryPolicy | None = None, deadline=None):
    """Invoke ``callable_``, retrying transient failures with backoff.

    Only :class:`~repro.errors.TransientError` is retried; everything
    else — permanent storage errors, crashes, timeouts — propagates on
    the first throw.  Sleeps go through :func:`current_clock` and are
    clipped to a live ``deadline``'s remaining budget; the deadline is
    re-checked before every attempt, so a retry loop can never outlive
    the query's time budget.
    """
    if policy is None:
        policy = DEFAULT_RETRY
    clock = current_clock()
    for attempt in range(policy.attempts):
        if deadline is not None:
            deadline.check()
        try:
            return callable_()
        except TransientError:
            if attempt + 1 >= policy.attempts:
                raise
            delay = policy.delay_ms(attempt) / 1000.0
            if deadline is not None:
                delay = min(delay, max(deadline.remaining(), 0.0))
            clock.sleep(delay)
    raise AssertionError("unreachable: loop returns or raises")


# -- execution context ---------------------------------------------------------


@dataclass(slots=True)
class RunContext:
    """Per-execution resilience settings, threaded through the engine.

    Carried explicitly (not thread-local) because scatter-gather fans
    out over worker threads; a context is cheap, immutable in intent,
    and shared read-only by every shard slice of one execution.
    """

    deadline: Deadline | None = None
    #: Drop permanently failed shard slices instead of raising —
    #: answers become a flagged-partial subset of the oracle.
    degraded: bool = False
    retry: RetryPolicy = field(default_factory=lambda: DEFAULT_RETRY)


# -- fault rules and plans -----------------------------------------------------


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One injected failure mode at one injection point.

    ``rate`` is the per-call fire probability (seeded RNG);
    ``times`` caps fires per *distinct context* (e.g. per
    ``(shard, path)``), which is how a deterministic chaos run injects
    "every slice fails exactly once, every retry succeeds";
    ``shard`` restricts the rule to one shard's calls.
    """

    point: str
    kind: str
    rate: float = 1.0
    times: int | None = None
    delay_ms: float = 25.0
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValidationError(
                f"unknown injection point {self.point!r}; "
                f"expected one of {', '.join(INJECTION_POINTS)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.kind == "crash" and self.point not in CRASH_POINTS:
            raise ValidationError(
                f"crash faults only apply at {', '.join(CRASH_POINTS)}"
            )
        if self.kind == "corrupt" and self.point not in CORRUPT_POINTS:
            raise ValidationError(
                f"corrupt faults only apply at {', '.join(CORRUPT_POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValidationError(f"rate must be in [0, 1], got {self.rate}")
        if self.times is not None and self.times < 1:
            raise ValidationError(f"times must be >= 1, got {self.times}")
        if self.delay_ms < 0:
            raise ValidationError(f"delay_ms must be >= 0, got {self.delay_ms}")


class FaultPlan:
    """A seeded, clocked set of fault rules — one reproducible chaos run.

    Thread-safe: the RNG draw and the per-context fire counters are
    updated under one lock (scatter slices fire concurrently).  The
    ``fired`` total is the test observable that a scenario actually
    exercised its faults rather than silently matching nothing.
    """

    def __init__(
        self,
        rules,
        seed: int = 0,
        clock: Clock | None = None,
    ) -> None:
        self.rules = tuple(rules)
        self.seed = seed
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.random = random.Random(seed)
        self.fired = 0
        self._counts: dict = {}
        self._lock = threading.Lock()
        # point -> [(rule index, rule)], so an armed-but-idle fire() is
        # one dictionary miss rather than a scan of every rule.
        self._by_point: dict = {}
        for index, rule in enumerate(self.rules):
            self._by_point.setdefault(rule.point, []).append((index, rule))

    def fire(self, point: str, data, context: dict):
        """Apply every matching rule; returns (possibly corrupted) data."""
        rules = self._by_point.get(point)
        if not rules:
            return data
        for index, rule in rules:
            if rule.shard is not None and context.get("shard") != rule.shard:
                continue
            with self._lock:
                if rule.rate < 1.0 and self.random.random() >= rule.rate:
                    continue
                if rule.times is not None:
                    key = (index, tuple(sorted(context.items())))
                    seen = self._counts.get(key, 0)
                    if seen >= rule.times:
                        continue
                    self._counts[key] = seen + 1
                self.fired += 1
            data = self._apply(rule, point, data, context)
        return data

    def _apply(self, rule: FaultRule, point: str, data, context: dict):
        detail = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
        where = f"{point}({detail})" if detail else point
        if rule.kind == "transient":
            raise TransientStorageError(f"injected transient fault at {where}")
        if rule.kind == "crash":
            raise BrokenExecutor(f"injected worker crash at {where}")
        if rule.kind == "latency":
            self.clock.sleep(rule.delay_ms / 1000.0)
            return data
        # corrupt: simulate a torn page — scramble a tail slice and flip
        # the type byte's high bit, so the result can never decode as a
        # valid node (types are tiny positive integers).  Detectability
        # is the contract: a corrupt fault must surface as a typed
        # StorageError, never as a silently wrong answer.
        if data is None:
            return data
        page = bytearray(data)
        if page:
            page[0] |= 0x80
            with self._lock:
                start = self.random.randrange(len(page))
                noise = self.random.randbytes(max(1, (len(page) - start) // 4))
            page[start : start + len(noise)] = noise[: len(page) - start]
        return bytes(page)

    def reset(self) -> None:
        """Forget fire counts and re-seed the RNG (replay the scenario)."""
        with self._lock:
            self.random = random.Random(self.seed)
            self.fired = 0
            self._counts.clear()

    def __repr__(self) -> str:
        return (
            f"FaultPlan(rules={len(self.rules)}, seed={self.seed}, "
            f"fired={self.fired})"
        )


# -- arming --------------------------------------------------------------------

_PLAN: FaultPlan | None = None


def fire(point: str, data=None, **context):
    """Injection point: a no-op returning ``data`` unless a plan is armed.

    The disarmed fast path is one global load and an ``is None`` test;
    armed-but-idle adds one dictionary probe.  That is the entire hot
    path cost the benchmark gate (``benchmarks/bench_faults.py``) holds
    to <= 5%.

    Invariant (machine-checked by ``repro lint``, rule ``fault-point``):
    every I/O boundary routes through ``fire``/``retry_call`` with a
    literal point from :data:`INJECTION_POINTS`, so the chaos harness
    can always reach it.
    """
    plan = _PLAN
    if plan is None:
        return data
    return plan.fire(point, data, context)


def arm(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` disarms)."""
    global _PLAN
    _PLAN = plan


def disarm() -> None:
    arm(None)


def active_plan() -> FaultPlan | None:
    return _PLAN


@contextmanager
def armed(plan: FaultPlan):
    """Arm ``plan`` for a scope, restoring whatever was armed before."""
    previous = _PLAN
    arm(plan)
    try:
        yield plan
    finally:
        arm(previous)


@contextmanager
def disarmed():
    """Suspend any armed plan for a scope (oracle runs under chaos CI)."""
    previous = _PLAN
    arm(None)
    try:
        yield
    finally:
        arm(previous)


# -- environment arming --------------------------------------------------------


def plan_from_env(value: str | None = None) -> FaultPlan | None:
    """Parse a ``REPRO_FAULTS`` specification into a plan.

    ``value=None`` reads the environment.  Unset/empty means no plan;
    anything malformed raises :class:`ValidationError` — a chaos run
    that silently arms nothing would pass CI while testing nothing.
    """
    if value is None:
        value = os.environ.get("REPRO_FAULTS", "")
    value = value.strip()
    if not value:
        return None
    seed = 0
    rules: list[FaultRule] = []
    for clause in value.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, separator, spec = clause.partition("=")
        name = name.strip()
        if not separator or not spec:
            raise ValidationError(
                f"REPRO_FAULTS clause {clause!r} must look like "
                f"seed=N or point=kind[@rate][,option=value...]"
            )
        if name == "seed":
            seed = _parse_int(spec, "seed")
            continue
        rules.append(_parse_rule(name, spec))
    if not rules:
        raise ValidationError("REPRO_FAULTS sets a seed but no fault rules")
    return FaultPlan(rules, seed=seed)


def _parse_rule(point: str, spec: str) -> FaultRule:
    head, *options = [part.strip() for part in spec.split(",")]
    kind, separator, rate_text = head.partition("@")
    rate = _parse_float(rate_text, "rate") if separator else 1.0
    settings: dict = {"point": point, "kind": kind.strip(), "rate": rate}
    for option in options:
        key, separator, value = option.partition("=")
        key = key.strip()
        if not separator:
            raise ValidationError(
                f"REPRO_FAULTS option {option!r} must look like name=value"
            )
        if key == "times":
            settings["times"] = _parse_int(value, "times")
        elif key == "delay_ms":
            settings["delay_ms"] = _parse_float(value, "delay_ms")
        elif key == "shard":
            settings["shard"] = _parse_int(value, "shard")
        else:
            raise ValidationError(
                f"unknown REPRO_FAULTS option {key!r} "
                f"(expected times, delay_ms or shard)"
            )
    return FaultRule(**settings)


def _parse_int(text: str, name: str) -> int:
    try:
        return int(text.strip())
    except ValueError:
        raise ValidationError(
            f"REPRO_FAULTS {name} must be an integer, got {text!r}"
        ) from None


def _parse_float(text: str, name: str) -> float:
    try:
        return float(text.strip())
    except ValueError:
        raise ValidationError(
            f"REPRO_FAULTS {name} must be a number, got {text!r}"
        ) from None


# Arm from the environment at import: the chaos CI step (and any user
# process) sets REPRO_FAULTS before Python starts, and every module
# that hosts an injection point imports this one.
arm(plan_from_env())
